"""Tests for the engine-wide dtype policy (DESIGN.md §5)."""

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    Adam,
    CrossEntropyLoss,
    Linear,
    Tensor,
    dtype_policy,
    fit,
    get_default_dtype,
    one_hot,
    set_default_dtype,
)


class TestPolicy:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.dtype(np.float64)
        assert Tensor([1.0]).data.dtype == np.float64

    def test_context_manager_scopes_and_restores(self):
        with dtype_policy("float32"):
            assert get_default_dtype() == np.dtype(np.float32)
            assert Tensor([1.0]).data.dtype == np.float32
        assert get_default_dtype() == np.dtype(np.float64)

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with dtype_policy("float32"):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.dtype(np.float64)

    def test_rejects_non_float_dtypes(self):
        for bad in ("int64", "float16", "complex128"):
            with pytest.raises(ValueError, match="float32 or float64"):
                set_default_dtype(bad)

    def test_one_hot_follows_policy(self):
        with dtype_policy("float32"):
            assert one_hot(np.array([1, 0]), 3).dtype == np.float32


class TestFloat32EndToEnd:
    def test_ops_stay_float32(self):
        with dtype_policy("float32"):
            a = Tensor(np.ones((2, 3)), requires_grad=True)
            b = Tensor(np.ones((3, 4)))
            out = (a @ b).tanh().sum()
            out.backward()
            assert out.data.dtype == np.float32
            assert a.grad.dtype == np.float32

    def test_training_step_runs_in_float32(self):
        with dtype_policy("float32"):
            rng = np.random.default_rng(0)
            lstm = LSTM(5, 8, 2, rng, dropout=0.0)
            head = Linear(8, 3, rng)
            x = Tensor(rng.normal(size=(4, 2, 5)).astype(np.float32))
            y = np.array([0, 1, 2, 1])
            params = lstm.parameters() + head.parameters()
            opt = Adam(params, lr=1e-2)
            loss_fn = CrossEntropyLoss()
            losses = []
            for _ in range(5):
                opt.zero_grad()
                out = lstm(x)
                loss = loss_fn(head(out[:, out.shape[1] - 1, :]), y)
                loss.backward()
                opt.step()
                losses.append(loss.item())
            assert all(np.isfinite(losses))
            assert losses[-1] < losses[0]
            assert all(p.data.dtype == np.float32 for p in params)
            assert all(p.grad.dtype == np.float32 for p in params)

    def test_fit_helper_in_float32(self):
        """The high-level fit loop works end to end under the policy."""
        from repro.nn import Module

        class TinyNet(Module):
            def __init__(self, rng):
                super().__init__()
                self.lstm = LSTM(4, 6, 1, rng, dropout=0.0)
                self.head = Linear(6, 2, rng)

            def forward(self, x):
                hidden = self.lstm(x)
                return self.head(hidden[:, hidden.shape[1] - 1, :])

        with dtype_policy(np.float32):
            rng = np.random.default_rng(1)
            model = TinyNet(rng)
            X = rng.normal(size=(12, 2, 4))
            y = rng.integers(0, 2, size=12)
            result = fit(model, X, y, epochs=2, batch_size=4, rng=rng)
            assert np.isfinite(result.train_losses).all()

    def test_state_dict_round_trip_casts(self):
        rng = np.random.default_rng(2)
        model64 = Linear(3, 2, rng)
        state = model64.state_dict()
        with dtype_policy("float32"):
            model32 = Linear(3, 2, np.random.default_rng(3))
            model32.load_state_dict(state)
            assert all(p.data.dtype == np.float32 for p in model32.parameters())
            np.testing.assert_allclose(
                model32.weight.data, state["weight"].astype(np.float32)
            )
