"""Stacked cross-model inference kernels vs the per-model fused path.

The stacked kernels (DESIGN.md §12) serve M same-shaped models' query
batches through one broadcast input projection and one batched recurrent
GEMM per step.  They must be numerically interchangeable with running
:func:`lstm_infer` / :func:`lstm_infer_last` once per model — same
elementwise activation sequence, only BLAS blocking differs — across
layer counts, heterogeneous per-layer sizes (the TL-FE surplus layer),
dtypes, and zero-padded ragged batches.  And they must record *nothing*
in the flop profiler: the dispatch layer books logical per-group MACs,
so kernel-side recording would double-count.
"""

import numpy as np
import pytest

from repro.nn.fused import (
    lstm_infer,
    lstm_infer_last,
    lstm_infer_stacked,
    stacked_infer_last,
)
from repro.nn.profiler import flop_counter

# Tight enough to catch any algorithmic divergence, loose enough for
# GEMM-blocking round-off; float32 scaled accordingly.
TOL = {"float64": dict(rtol=1e-9, atol=1e-12), "float32": dict(rtol=1e-4, atol=1e-6)}


def _random_models(num_models, cell_sizes, dtype, seed):
    """Per-model layer params plus their stacked-along-axis-0 form."""
    rng = np.random.default_rng(seed)
    per_model = []
    for _ in range(num_models):
        layers = []
        for f, h in cell_sizes:
            layers.append(
                (
                    rng.normal(scale=0.5, size=(f, 4 * h)).astype(dtype),
                    rng.normal(scale=0.5, size=(h, 4 * h)).astype(dtype),
                    rng.normal(scale=0.5, size=(4 * h,)).astype(dtype),
                )
            )
        per_model.append(layers)
    stacked = [
        tuple(np.stack([model[layer][part] for model in per_model]) for part in range(3))
        for layer in range(len(cell_sizes))
    ]
    return per_model, stacked


# (models, batch, seq, [(input, hidden) per layer])
CASES = [
    (1, 2, 3, [(5, 4)]),
    (3, 2, 4, [(6, 8), (8, 8)]),
    (4, 1, 1, [(7, 5)]),  # single-step: the t==0-only path
    (2, 3, 5, [(6, 8), (8, 5), (5, 4)]),  # shrinking stack, 3 layers
    (5, 2, 2, [(94, 24), (24, 24)]),  # tiny-scale predictor shape
]


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("case", CASES)
class TestStackedPerModelParity:
    def test_last_hidden_matches_per_model(self, case, dtype):
        num_models, batch, seq, cell_sizes = case
        per_model, stacked = _random_models(num_models, cell_sizes, dtype, seed=11)
        x = (
            np.random.default_rng(12)
            .normal(size=(num_models, batch, seq, cell_sizes[0][0]))
            .astype(dtype)
        )
        out = stacked_infer_last(x, stacked)
        assert out.shape == (num_models, batch, cell_sizes[-1][1])
        assert out.flags["C_CONTIGUOUS"]
        for m, layers in enumerate(per_model):
            np.testing.assert_allclose(
                out[m], lstm_infer_last(x[m], layers), **TOL[dtype]
            )

    def test_full_sequence_matches_per_model(self, case, dtype):
        num_models, batch, seq, cell_sizes = case
        per_model, stacked = _random_models(num_models, cell_sizes, dtype, seed=21)
        x = (
            np.random.default_rng(22)
            .normal(size=(num_models, batch, seq, cell_sizes[0][0]))
            .astype(dtype)
        )
        out = lstm_infer_stacked(x, stacked)
        assert out.shape == (num_models, batch, seq, cell_sizes[-1][1])
        for m, layers in enumerate(per_model):
            np.testing.assert_allclose(out[m], lstm_infer(x[m], layers), **TOL[dtype])


class TestRaggedPadding:
    def test_zero_padded_rows_do_not_pollute_real_rows(self):
        """The kernels must tolerate zero-padded ragged batches: real
        rows come out exactly as an unpadded per-model run produces
        them.  (The dispatcher serves uniform-size sub-buckets and never
        pads, but the kernel contract stays batch-shape agnostic.)"""
        cell_sizes = [(6, 8), (8, 5)]
        per_model, stacked = _random_models(3, cell_sizes, "float64", seed=31)
        rng = np.random.default_rng(32)
        sizes = [3, 1, 2]
        widest = max(sizes)
        x = np.zeros((3, widest, 4, cell_sizes[0][0]))
        reals = [rng.normal(size=(size, 4, cell_sizes[0][0])) for size in sizes]
        for m, real in enumerate(reals):
            x[m, : sizes[m]] = real
        out = stacked_infer_last(x, stacked)
        for m, (size, layers) in enumerate(zip(sizes, per_model)):
            np.testing.assert_allclose(
                out[m, :size],
                lstm_infer_last(reals[m], layers),
                rtol=1e-9,
                atol=1e-12,
            )
        assert np.all(np.isfinite(out))  # pad rows stay finite too


class TestProfilerNeutrality:
    def test_stacked_kernels_record_no_macs(self):
        """Stacked GEMMs serve many groups at once, so the kernels must
        not touch the profiler — the dispatch layer books each group's
        logical per-model MACs itself (DESIGN.md §12)."""
        _, stacked = _random_models(2, [(5, 4)], "float64", seed=41)
        x = np.random.default_rng(42).normal(size=(2, 3, 4, 5))
        with flop_counter() as counter:
            stacked_infer_last(x, stacked)
            lstm_infer_stacked(x, stacked)
        assert counter.macs == 0


class TestInputValidation:
    def test_rejects_non_4d_input(self):
        _, stacked = _random_models(2, [(5, 4)], "float64", seed=51)
        with pytest.raises(ValueError, match="models, batch, seq, features"):
            stacked_infer_last(np.zeros((3, 4, 5)), stacked)
