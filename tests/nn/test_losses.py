"""Unit tests for loss functions."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, NLLLoss, Tensor
from repro.nn.functional import log_softmax


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = np.array([[2.0, 1.0, 0.5], [0.0, 3.0, -1.0]])
        targets = np.array([0, 1])
        loss = CrossEntropyLoss()(Tensor(logits), targets)
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        expected = -np.log(probs[[0, 1], targets]).mean()
        assert abs(loss.item() - expected) < 1e-12

    def test_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0]])
        loss = CrossEntropyLoss()(Tensor(logits), np.array([0]))
        assert loss.item() < 1e-6

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.array([[1.0, 2.0, 0.0]]), requires_grad=True)
        CrossEntropyLoss()(logits, np.array([1])).backward()
        probs = np.exp(logits.data) / np.exp(logits.data).sum()
        expected = probs.copy()
        expected[0, 1] -= 1.0
        np.testing.assert_allclose(logits.grad, expected, atol=1e-12)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(Tensor(np.ones(3)), np.array([0]))
        with pytest.raises(ValueError):
            CrossEntropyLoss()(Tensor(np.ones((2, 3))), np.array([0]))


class TestNLL:
    def test_matches_cross_entropy_via_log_softmax(self):
        logits = np.array([[0.3, -1.2, 2.0], [1.0, 1.0, 1.0]])
        targets = np.array([2, 0])
        ce = CrossEntropyLoss()(Tensor(logits), targets).item()
        nll = NLLLoss()(log_softmax(Tensor(logits), axis=-1), targets).item()
        assert abs(ce - nll) < 1e-12
