"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor
from repro.nn.functional import log_softmax, softmax
from repro.nn.tensor import _unbroadcast

finite_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
    elements=st.floats(-5.0, 5.0, allow_nan=False),
)


@st.composite
def paired_arrays(draw):
    """Two arrays of the same shape."""
    shape = draw(array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4))
    elems = st.floats(-5.0, 5.0, allow_nan=False)
    a = draw(arrays(dtype=np.float64, shape=shape, elements=elems))
    b = draw(arrays(dtype=np.float64, shape=shape, elements=elems))
    return a, b


@settings(max_examples=40, deadline=None)
@given(paired_arrays())
def test_addition_gradient_is_ones(pair):
    a_data, b_data = pair
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones_like(a_data))
    np.testing.assert_allclose(b.grad, np.ones_like(b_data))


@settings(max_examples=40, deadline=None)
@given(paired_arrays())
def test_product_rule(pair):
    a_data, b_data = pair
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, b_data, atol=1e-12)
    np.testing.assert_allclose(b.grad, a_data, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_tanh_gradient_bounded(data):
    x = Tensor(data, requires_grad=True)
    x.tanh().sum().backward()
    assert np.all(x.grad <= 1.0 + 1e-12)
    assert np.all(x.grad >= 0.0)


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_sum_then_mean_consistency(data):
    x1 = Tensor(data, requires_grad=True)
    x1.mean().backward()
    x2 = Tensor(data, requires_grad=True)
    (x2.sum() * (1.0 / data.size)).backward()
    np.testing.assert_allclose(x1.grad, x2.grad, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
        elements=st.floats(-20.0, 20.0, allow_nan=False),
    ),
    st.floats(0.05, 5.0),
)
def test_softmax_is_distribution(data, temperature):
    probs = softmax(Tensor(data), axis=-1, temperature=temperature).numpy()
    np.testing.assert_allclose(probs.sum(axis=-1), np.ones(len(data)), atol=1e-9)
    assert np.all(probs >= 0)


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
        elements=st.floats(-20.0, 20.0, allow_nan=False),
    )
)
def test_log_softmax_matches_log_of_softmax(data):
    lsm = log_softmax(Tensor(data), axis=-1).numpy()
    sm = softmax(Tensor(data), axis=-1).numpy()
    np.testing.assert_allclose(lsm, np.log(sm), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
        elements=st.floats(-10.0, 10.0, allow_nan=False),
    )
)
def test_temperature_preserves_argmax(data):
    hot = softmax(Tensor(data), axis=-1, temperature=1.0).numpy()
    cold = softmax(Tensor(data), axis=-1, temperature=1e-2).numpy()
    np.testing.assert_array_equal(hot.argmax(axis=-1), cold.argmax(axis=-1))


@settings(max_examples=40, deadline=None)
@given(finite_arrays)
def test_unbroadcast_identity_on_same_shape(data):
    np.testing.assert_array_equal(_unbroadcast(data, data.shape), data)


@settings(max_examples=30, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
        elements=st.floats(-3.0, 3.0, allow_nan=False),
    )
)
def test_unbroadcast_matches_broadcast_adjoint(grad):
    """Summing back a broadcast grad equals multiplying by the all-ones
    Jacobian of the broadcast."""
    rows, cols = grad.shape
    reduced = _unbroadcast(grad, (cols,))
    np.testing.assert_allclose(reduced, grad.sum(axis=0), atol=1e-12)
    reduced_col = _unbroadcast(grad, (rows, 1))
    np.testing.assert_allclose(reduced_col, grad.sum(axis=1, keepdims=True), atol=1e-12)
