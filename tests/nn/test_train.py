"""Unit tests for the training utilities."""

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    Linear,
    Module,
    Tensor,
    TimeSeriesSplit,
    evaluate_accuracy,
    fit,
    grid_search,
    iterate_minibatches,
)


class TinyClassifier(Module):
    def __init__(self, hidden=8, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.lstm = LSTM(3, hidden, 1, rng)
        self.head = Linear(hidden, 2, rng)

    def forward(self, x):
        h = self.lstm(x)
        return self.head(h[:, h.shape[1] - 1, :])


def make_separable_data(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2, 3))
    y = (X[:, -1, 0] > 0).astype(np.int64)
    return X, y


class TestMinibatches:
    def test_covers_all_samples(self):
        X = np.arange(10)[:, None]
        y = np.arange(10)
        seen = []
        for bx, _ in iterate_minibatches(X, y, batch_size=3):
            seen.extend(bx.ravel().tolist())
        assert sorted(seen) == list(range(10))

    def test_shuffles_with_rng(self):
        X = np.arange(10)[:, None]
        y = np.arange(10)
        rng = np.random.default_rng(0)
        first_batch = next(iter(iterate_minibatches(X, y, 10, rng)))[0].ravel()
        assert not np.array_equal(first_batch, np.arange(10))


class TestFit:
    def test_loss_decreases(self):
        X, y = make_separable_data()
        model = TinyClassifier()
        result = fit(model, X, y, epochs=15, batch_size=16, lr=1e-2, rng=np.random.default_rng(0))
        assert result.train_losses[-1] < result.train_losses[0]
        assert evaluate_accuracy(model, X, y) > 0.9

    def test_early_stopping_respects_patience(self):
        X, y = make_separable_data(n=40)
        model = TinyClassifier()
        result = fit(
            model, X, y, epochs=200, batch_size=16, lr=5e-2,
            rng=np.random.default_rng(0), patience=3,
        )
        assert result.epochs_run < 200

    def test_empty_dataset_rejected(self):
        model = TinyClassifier()
        with pytest.raises(ValueError):
            fit(model, np.zeros((0, 2, 3)), np.zeros(0), epochs=1, batch_size=4)

    def test_model_left_in_eval_mode(self):
        X, y = make_separable_data(n=20)
        model = TinyClassifier()
        fit(model, X, y, epochs=1, batch_size=8)
        assert not model.training


class TestEvaluateAccuracy:
    def test_top_k_widens_hits(self):
        X, y = make_separable_data(n=60)
        model = TinyClassifier()
        top1 = evaluate_accuracy(model, X, y, k=1)
        top2 = evaluate_accuracy(model, X, y, k=2)
        assert top2 >= top1
        assert top2 == 1.0  # binary problem: top-2 is everything

    def test_empty_returns_nan(self):
        model = TinyClassifier()
        assert np.isnan(evaluate_accuracy(model, np.zeros((0, 2, 3)), np.zeros(0)))


class TestTimeSeriesSplit:
    def test_train_always_precedes_validation(self):
        splitter = TimeSeriesSplit(4)
        for train_idx, val_idx in splitter.split(100):
            assert train_idx.max() < val_idx.min()

    def test_expanding_window(self):
        sizes = [len(tr) for tr, _ in TimeSeriesSplit(3).split(40)]
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == 3

    def test_last_fold_reaches_end(self):
        folds = list(TimeSeriesSplit(3).split(41))
        assert folds[-1][1][-1] == 40

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            list(TimeSeriesSplit(5).split(4))

    def test_zero_splits_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesSplit(0)


class TestGridSearch:
    def test_selects_plausible_configuration(self):
        X, y = make_separable_data(n=90)
        best, scores = grid_search(
            lambda hidden: TinyClassifier(hidden=hidden),
            {"hidden": [2, 8]},
            X,
            y,
            n_splits=2,
            epochs=8,
            batch_size=16,
            rng=np.random.default_rng(0),
        )
        assert best["hidden"] in (2, 8)
        assert len(scores) == 2
        assert all(0.0 <= score <= 1.0 for _, score in scores)
