"""Unit tests for the Module base class."""

import numpy as np
import pytest

from repro.nn import LSTM, Linear, Module, Sequential, Tensor
from repro.nn.module import Parameter


class ToyModel(Module):
    def __init__(self, rng):
        super().__init__()
        self.encoder = Linear(4, 8, rng)
        self.blocks = [Linear(8, 8, rng), Linear(8, 8, rng)]
        self.head = Linear(8, 2, rng)

    def forward(self, x):
        x = self.encoder(x)
        for block in self.blocks:
            x = block(x)
        return self.head(x)


class TestDiscovery:
    def test_named_parameters_cover_nested_and_lists(self, rng):
        model = ToyModel(rng)
        names = {name for name, _ in model.named_parameters()}
        assert "encoder.weight" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert "head.bias" in names
        assert len(names) == 8

    def test_lstm_cells_discovered(self, rng):
        lstm = LSTM(3, 4, 2, rng)
        names = {name for name, _ in lstm.named_parameters()}
        assert "cells.0.weight_ih" in names
        assert "cells.1.bias" in names

    def test_num_parameters_trainable_filter(self, rng):
        model = ToyModel(rng)
        total = model.num_parameters()
        model.encoder.freeze()
        assert model.num_parameters(trainable_only=True) < total
        assert model.num_parameters() == total


class TestModes:
    def test_train_eval_propagate(self, rng):
        model = ToyModel(rng)
        model.eval()
        assert not model.encoder.training
        assert not model.blocks[1].training
        model.train()
        assert model.blocks[0].training


class TestFreeze:
    def test_freeze_unfreeze_roundtrip(self, rng):
        model = ToyModel(rng)
        model.freeze()
        assert all(not p.requires_grad for p in model.parameters())
        model.unfreeze()
        assert all(p.requires_grad for p in model.parameters())

    def test_subtree_freeze(self, rng):
        model = ToyModel(rng)
        model.encoder.freeze()
        assert not model.encoder.weight.requires_grad
        assert model.head.weight.requires_grad

    def test_zero_grad_clears(self, rng):
        model = ToyModel(rng)
        out = model(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert model.head.bias.grad is not None
        model.zero_grad()
        assert model.head.bias.grad is None


class TestStateDict:
    def test_roundtrip(self, rng):
        a = ToyModel(rng)
        b = ToyModel(np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self, rng):
        model = ToyModel(rng)
        state = model.state_dict()
        state["encoder.weight"][:] = 0.0
        assert not np.allclose(model.encoder.weight.data, 0.0)

    def test_strict_missing_key_raises(self, rng):
        model = ToyModel(rng)
        state = model.state_dict()
        del state["head.bias"]
        with pytest.raises(KeyError, match="missing"):
            model.load_state_dict(state)

    def test_strict_unexpected_key_raises(self, rng):
        model = ToyModel(rng)
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            model.load_state_dict(state)

    def test_non_strict_partial_load(self, rng):
        model = ToyModel(rng)
        original_head = model.head.weight.data.copy()
        partial = {"encoder.weight": np.zeros_like(model.encoder.weight.data)}
        model.load_state_dict(partial, strict=False)
        np.testing.assert_array_equal(model.encoder.weight.data, 0.0)
        np.testing.assert_array_equal(model.head.weight.data, original_head)

    def test_shape_mismatch_raises(self, rng):
        model = ToyModel(rng)
        state = model.state_dict()
        state["encoder.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)
