"""Unit tests for checkpoint serialization."""

import numpy as np
import pytest

from repro.nn import Linear, deserialize_state, load_module, save_module, serialize_state


class TestBytesRoundtrip:
    def test_state_roundtrip(self):
        state = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        blob = serialize_state(state, metadata={"note": "hello", "n": 3})
        restored, metadata = deserialize_state(blob)
        np.testing.assert_array_equal(restored["w"], state["w"])
        np.testing.assert_array_equal(restored["b"], state["b"])
        assert metadata == {"note": "hello", "n": 3}

    def test_empty_metadata(self):
        blob = serialize_state({"x": np.ones(1)})
        _, metadata = deserialize_state(blob)
        assert metadata == {}

    def test_blob_is_bytes(self):
        blob = serialize_state({"x": np.ones(2)})
        assert isinstance(blob, bytes)
        assert len(blob) > 0


class TestModuleCheckpoint:
    def test_save_and_load_module(self, tmp_path, rng):
        src = Linear(3, 2, rng)
        path = tmp_path / "ckpt" / "model.npz"
        size = save_module(src, path, metadata={"epoch": 5})
        assert size == path.stat().st_size

        dst = Linear(3, 2, np.random.default_rng(7))
        metadata = load_module(dst, path)
        assert metadata == {"epoch": 5}
        np.testing.assert_array_equal(src.weight.data, dst.weight.data)
        np.testing.assert_array_equal(src.bias.data, dst.bias.data)

    def test_load_into_wrong_shape_raises(self, tmp_path, rng):
        src = Linear(3, 2, rng)
        path = tmp_path / "model.npz"
        save_module(src, path)
        wrong = Linear(4, 2, rng)
        with pytest.raises((KeyError, ValueError)):
            load_module(wrong, path)
