"""Unit tests for Linear, Dropout, Sequential, TemperatureScaling."""

import numpy as np
import pytest

from repro.nn import Dropout, Linear, Sequential, TemperatureScaling, Tensor


class TestLinear:
    def test_forward_shape_and_value(self, rng):
        layer = Linear(4, 3, rng)
        layer.weight.data = np.eye(4, 3)
        layer.bias.data = np.ones(3)
        out = layer(Tensor(np.ones((2, 4))))
        np.testing.assert_allclose(out.numpy(), np.full((2, 3), 2.0))

    def test_gradients_flow_to_params(self, rng):
        layer = Linear(3, 2, rng)
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])

    def test_repr(self, rng):
        assert "Linear" in repr(Linear(2, 5, rng))


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng)
        layer.eval()
        x = np.arange(12.0).reshape(3, 4)
        np.testing.assert_array_equal(layer(Tensor(x)).numpy(), x)

    def test_train_mode_zeroes_and_rescales(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        layer.train()
        x = np.ones((100, 100))
        out = layer(Tensor(x)).numpy()
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout rescale

    def test_zero_probability_is_identity_in_train(self, rng):
        layer = Dropout(0.0, rng)
        x = np.ones((5, 5))
        np.testing.assert_array_equal(layer(Tensor(x)).numpy(), x)

    @pytest.mark.parametrize("p", [-0.1, 1.0, 1.5])
    def test_invalid_probability_rejected(self, p, rng):
        with pytest.raises(ValueError):
            Dropout(p, rng)


class TestSequential:
    def test_runs_in_order(self, rng):
        seq = Sequential(Linear(3, 4, rng), Linear(4, 2, rng))
        out = seq(Tensor(np.ones((1, 3))))
        assert out.shape == (1, 2)

    def test_parameters_discovered_through_list(self, rng):
        seq = Sequential(Linear(3, 4, rng), Linear(4, 2, rng))
        names = [name for name, _ in seq.named_parameters()]
        assert "steps.0.weight" in names
        assert "steps.1.bias" in names
        assert len(seq.parameters()) == 4

    def test_append_and_indexing(self, rng):
        seq = Sequential(Linear(2, 2, rng))
        seq.append(Linear(2, 2, rng))
        assert len(seq) == 2
        assert isinstance(seq[1], Linear)


class TestTemperatureScaling:
    def test_identity_in_training_mode(self):
        layer = TemperatureScaling(0.01)
        layer.train()
        x = np.array([[1.0, 2.0]])
        np.testing.assert_array_equal(layer(Tensor(x)).numpy(), x)

    def test_scales_in_eval_mode(self):
        layer = TemperatureScaling(0.5)
        layer.eval()
        x = np.array([[1.0, 2.0]])
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), x / 0.5)

    def test_unit_temperature_is_identity(self):
        layer = TemperatureScaling(1.0)
        layer.eval()
        x = np.array([[3.0, -1.0]])
        np.testing.assert_array_equal(layer(Tensor(x)).numpy(), x)

    def test_preserves_ordering(self):
        layer = TemperatureScaling(1e-4)
        layer.eval()
        x = np.array([[0.1, 0.7, 0.3]])
        out = layer(Tensor(x)).numpy()
        np.testing.assert_array_equal(np.argsort(out), np.argsort(x))

    @pytest.mark.parametrize("bad", [0.0, -0.5])
    def test_nonpositive_temperature_rejected(self, bad):
        with pytest.raises(ValueError):
            TemperatureScaling(bad)
        layer = TemperatureScaling(1.0)
        with pytest.raises(ValueError):
            layer.set_temperature(bad)
