"""Unit tests for LSTMCell and LSTM, including exact gradient checks."""

import numpy as np
import pytest

from repro.nn import LSTM, CrossEntropyLoss, Linear, LSTMCell, Tensor


class TestLSTMCell:
    def test_step_shapes(self, rng):
        cell = LSTMCell(5, 8, rng)
        h, (h2, c2) = cell(Tensor(np.ones((3, 5))), cell.initial_state(3))
        assert h.shape == (3, 8)
        assert h2.shape == (3, 8)
        assert c2.shape == (3, 8)

    def test_state_evolves(self, rng):
        cell = LSTMCell(4, 4, rng)
        state = cell.initial_state(1)
        x = Tensor(np.ones((1, 4)))
        _, state1 = cell(x, state)
        _, state2 = cell(x, state1)
        assert not np.allclose(state1[1].numpy(), state2[1].numpy())

    def test_gates_bounded_effect(self, rng):
        """Cell output h = o * tanh(c) is bounded in (-1, 1)."""
        cell = LSTMCell(3, 6, rng)
        big_input = Tensor(np.full((2, 3), 100.0))
        h, _ = cell(big_input, cell.initial_state(2))
        assert np.all(np.abs(h.numpy()) < 1.0)


class TestLSTM:
    def test_output_shape(self, rng):
        lstm = LSTM(6, 10, 2, rng)
        out = lstm(Tensor(np.ones((4, 3, 6))))
        assert out.shape == (4, 3, 10)

    def test_rejects_wrong_rank(self, rng):
        lstm = LSTM(6, 10, 1, rng)
        with pytest.raises(ValueError, match="batch, seq, features"):
            lstm(Tensor(np.ones((4, 6))))

    def test_rejects_zero_layers(self, rng):
        with pytest.raises(ValueError):
            LSTM(4, 4, 0, rng)

    def test_last_hidden(self, rng):
        lstm = LSTM(3, 5, 1, rng)
        x = Tensor(np.ones((2, 4, 3)))
        full = lstm(x).numpy()
        lstm_last = lstm.last_hidden(Tensor(np.ones((2, 4, 3)))).numpy()
        # Same weights, deterministic in eval: the last step must match.
        lstm.eval()
        full = lstm(Tensor(np.ones((2, 4, 3)))).numpy()
        last = lstm.last_hidden(Tensor(np.ones((2, 4, 3)))).numpy()
        np.testing.assert_allclose(last, full[:, -1, :])

    def test_dropout_only_between_layers_in_train(self):
        rng = np.random.default_rng(3)
        lstm = LSTM(4, 4, 2, rng, dropout=0.9)
        x = Tensor(np.ones((2, 2, 4)))
        lstm.eval()
        a = lstm(x).numpy()
        b = lstm(x).numpy()
        np.testing.assert_array_equal(a, b)  # eval: deterministic
        lstm.train()
        c = lstm(x).numpy()
        d = lstm(x).numpy()
        assert not np.allclose(c, d)  # train: stochastic masks

    def test_parameter_count(self, rng):
        lstm = LSTM(5, 8, 2, rng)
        # layer 0: (5*32 + 8*32 + 32); layer 1: (8*32 + 8*32 + 32)
        expected = (5 * 32 + 8 * 32 + 32) + (8 * 32 + 8 * 32 + 32)
        assert lstm.num_parameters() == expected

    def test_input_gradients_match_numerical(self, rng):
        """Full-pipeline gradcheck (LSTM -> Linear -> CE) vs finite differences."""
        lstm = LSTM(4, 3, 2, rng, dropout=0.0)
        head = Linear(3, 2, rng)
        loss_fn = CrossEntropyLoss()
        targets = np.array([1, 0])
        x0 = rng.normal(size=(2, 2, 4))

        def loss_of(arr):
            hidden = lstm(Tensor(arr))
            logits = head(hidden[:, hidden.shape[1] - 1, :])
            return loss_fn(logits, targets).item()

        x = Tensor(x0, requires_grad=True)
        hidden = lstm(x)
        loss = loss_fn(head(hidden[:, hidden.shape[1] - 1, :]), targets)
        loss.backward()

        eps = 1e-6
        for idx in [(0, 0, 0), (1, 1, 2), (0, 1, 3)]:
            xp, xm = x0.copy(), x0.copy()
            xp[idx] += eps
            xm[idx] -= eps
            numeric = (loss_of(xp) - loss_of(xm)) / (2 * eps)
            assert abs(x.grad[idx] - numeric) < 1e-7

    def test_weight_gradients_match_numerical(self, rng):
        lstm = LSTM(3, 2, 1, rng, dropout=0.0)
        head = Linear(2, 2, rng)
        loss_fn = CrossEntropyLoss()
        x = Tensor(rng.normal(size=(2, 2, 3)))
        targets = np.array([0, 1])

        def loss_now():
            hidden = lstm(x)
            return loss_fn(head(hidden[:, 1, :]), targets)

        loss_now().backward()
        w = lstm.cells[0].weight_hh
        analytic = w.grad[0, 1]
        eps = 1e-6
        orig = w.data[0, 1]
        w.data[0, 1] = orig + eps
        up = loss_now().item()
        w.data[0, 1] = orig - eps
        down = loss_now().item()
        w.data[0, 1] = orig
        assert abs(analytic - (up - down) / (2 * eps)) < 1e-7
