"""Unit tests for the three inversion attack methods.

Uses a *planted* black-box predictor whose confidence in the observed
output is high exactly when the candidate's missing-step location matches a
planted secret, so attack correctness can be asserted deterministically
without training models.
"""

import numpy as np
import pytest

from repro.attacks import (
    AdversaryClass,
    BruteForceAttack,
    GradientDescentAttack,
    T_MINUS_1,
    T_MINUS_2,
    TimeBasedAttack,
    build_instance,
    uniform_prior,
)
from repro.data import FeatureSpec, SessionFeatures
from repro.data.dataset import Window

NUM_LOCATIONS = 8
SPEC = FeatureSpec(num_locations=NUM_LOCATIONS)


class PlantedPredictor:
    """Black-box stub: confidence peaks when the missing-step location
    matches the planted location (and, optionally, the entry bin)."""

    def __init__(self, planted_location, step, observed=5, check_entry=None):
        self.spec = SPEC
        self.planted = planted_location
        self.step = step
        self.observed = observed
        self.check_entry = check_entry
        self.query_count = 0

    def confidences_encoded(self, batch):
        self.query_count += len(batch)
        probs = np.full((len(batch), NUM_LOCATIONS), 0.01 / (NUM_LOCATIONS - 1))
        loc_block = batch[
            :, self.step, self.spec.location_offset : self.spec.location_offset + NUM_LOCATIONS
        ]
        match = loc_block[:, self.planted] == 1.0
        if self.check_entry is not None:
            entry_block = batch[
                :, self.step, self.spec.entry_offset : self.spec.entry_offset + SPEC.entry_bins
            ]
            match = match & (entry_block[:, self.check_entry] == 1.0)
        probs[match, :] = (1 - 0.99) / (NUM_LOCATIONS - 1)
        probs[match, self.observed] = 0.99
        return probs


def make_window():
    return Window(
        user_id=0,
        history=(
            SessionFeatures(entry_bin=16, duration_bin=6, location=1, day_of_week=2),
            SessionFeatures(entry_bin=18, duration_bin=3, location=3, day_of_week=2),
        ),
        target=5,
        day_index=0,
        contiguous=True,
    )


class TestBruteForce:
    def test_recovers_planted_location_a1(self):
        instance = build_instance(make_window(), AdversaryClass.A1)
        predictor = PlantedPredictor(planted_location=3, step=T_MINUS_1)
        output = BruteForceAttack().run(instance, predictor, uniform_prior(NUM_LOCATIONS))
        recon = output.reconstructions[T_MINUS_1]
        assert recon.ranked_locations[0] == 3
        assert output.hits(1) == [True]

    def test_query_count_is_full_product_space(self):
        instance = build_instance(make_window(), AdversaryClass.A1)
        predictor = PlantedPredictor(planted_location=3, step=T_MINUS_1)
        output = BruteForceAttack().run(instance, predictor, uniform_prior(NUM_LOCATIONS))
        assert output.num_queries == SPEC.entry_bins * SPEC.duration_bins * NUM_LOCATIONS

    def test_a3_rejected(self):
        instance = build_instance(make_window(), AdversaryClass.A3)
        predictor = PlantedPredictor(planted_location=3, step=T_MINUS_1)
        with pytest.raises(ValueError, match="single missing"):
            BruteForceAttack().run(instance, predictor, uniform_prior(NUM_LOCATIONS))


class TestTimeBased:
    def test_recovers_planted_location_a1(self):
        instance = build_instance(make_window(), AdversaryClass.A1)
        predictor = PlantedPredictor(planted_location=3, step=T_MINUS_1)
        output = TimeBasedAttack().run(instance, predictor, uniform_prior(NUM_LOCATIONS))
        assert output.reconstructions[T_MINUS_1].ranked_locations[0] == 3

    def test_entry_derived_from_continuity_a1(self):
        """A1's derived e_{t-1} = e_{t-2} + d_{t-2}: bin 16 (8:00) + bin 6
        (~65 min) -> minute 545 -> bin 18."""
        instance = build_instance(make_window(), AdversaryClass.A1)
        predictor = PlantedPredictor(planted_location=3, step=T_MINUS_1, check_entry=18)
        output = TimeBasedAttack().run(instance, predictor, uniform_prior(NUM_LOCATIONS))
        # The planted predictor only fires on (location=3 AND entry=18); a
        # top hit proves the attack derived the right entry bin.
        assert output.reconstructions[T_MINUS_1].ranked_locations[0] == 3

    def test_recovers_planted_location_a2(self):
        instance = build_instance(make_window(), AdversaryClass.A2)
        predictor = PlantedPredictor(planted_location=1, step=T_MINUS_2)
        output = TimeBasedAttack().run(instance, predictor, uniform_prior(NUM_LOCATIONS))
        assert output.reconstructions[T_MINUS_2].ranked_locations[0] == 1

    def test_a3_reconstructs_both_steps(self):
        instance = build_instance(make_window(), AdversaryClass.A3)
        predictor = PlantedPredictor(planted_location=3, step=T_MINUS_1)
        output = TimeBasedAttack(a3_entry_stride=8, a3_duration_stride=8).run(
            instance, predictor, uniform_prior(NUM_LOCATIONS)
        )
        assert set(output.reconstructions) == {T_MINUS_2, T_MINUS_1}
        assert output.reconstructions[T_MINUS_1].ranked_locations[0] == 3

    def test_far_fewer_queries_than_brute_force(self):
        instance = build_instance(make_window(), AdversaryClass.A1)
        predictor = PlantedPredictor(planted_location=3, step=T_MINUS_1)
        tb = TimeBasedAttack().run(instance, predictor, uniform_prior(NUM_LOCATIONS))
        bf_queries = SPEC.entry_bins * SPEC.duration_bins * NUM_LOCATIONS
        assert tb.num_queries * 10 <= bf_queries

    def test_pruned_locations_restrict_search(self):
        instance = build_instance(make_window(), AdversaryClass.A1)
        predictor = PlantedPredictor(planted_location=3, step=T_MINUS_1)
        attack = TimeBasedAttack(candidate_locations=np.array([2, 3, 5]))
        output = attack.run(instance, predictor, uniform_prior(NUM_LOCATIONS))
        assert set(output.reconstructions[T_MINUS_1].ranked_locations) <= {2, 3, 5}

    def test_prior_weights_break_saturated_ties(self):
        """Under a defended (saturating) model many candidates score
        identically; the prior must then dominate the ranking."""
        instance = build_instance(make_window(), AdversaryClass.A1)

        class SaturatedPredictor(PlantedPredictor):
            def confidences_encoded(self, batch):
                self.query_count += len(batch)
                probs = np.zeros((len(batch), NUM_LOCATIONS))
                probs[:, self.observed] = 1.0  # all candidates look alike
                return probs

        predictor = SaturatedPredictor(planted_location=3, step=T_MINUS_1)
        prior = np.full(NUM_LOCATIONS, 0.05)
        prior[6] = 1.0 - 0.05 * (NUM_LOCATIONS - 1)
        output = TimeBasedAttack().run(instance, predictor, prior)
        assert output.reconstructions[T_MINUS_1].ranked_locations[0] == 6


class TestGradientDescent:
    def test_returns_full_ranking(self, tiny_corpus, tiny_general):
        from repro.data import SpatialLevel
        from repro.models import NextLocationPredictor

        general, _, _ = tiny_general
        spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        predictor = NextLocationPredictor(general, spec)
        uid = tiny_corpus.personal_ids[0]
        window = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).windows[0]
        instance = build_instance(window, AdversaryClass.A1)
        attack = GradientDescentAttack()
        attack.config.iterations = 10
        output = attack.run(instance, predictor, uniform_prior(spec.num_locations))
        recon = output.reconstructions[T_MINUS_1]
        assert len(recon.ranked_locations) == spec.num_locations
        assert sorted(recon.ranked_locations.tolist()) == list(range(spec.num_locations))

    def test_handles_a3(self, tiny_corpus, tiny_general):
        from repro.data import SpatialLevel
        from repro.models import NextLocationPredictor

        general, _, _ = tiny_general
        spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        predictor = NextLocationPredictor(general, spec)
        uid = tiny_corpus.personal_ids[0]
        window = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).windows[0]
        instance = build_instance(window, AdversaryClass.A3)
        attack = GradientDescentAttack()
        attack.config.iterations = 5
        output = attack.run(instance, predictor, uniform_prior(spec.num_locations))
        assert set(output.reconstructions) == {T_MINUS_2, T_MINUS_1}

    def test_deterministic_given_seed(self, tiny_corpus, tiny_general):
        from repro.data import SpatialLevel
        from repro.models import NextLocationPredictor

        general, _, _ = tiny_general
        spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        uid = tiny_corpus.personal_ids[0]
        window = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).windows[0]
        instance = build_instance(window, AdversaryClass.A1)
        prior = uniform_prior(spec.num_locations)

        def run_once():
            attack = GradientDescentAttack(seed=42)
            attack.config.iterations = 8
            predictor = NextLocationPredictor(general, spec)
            return attack.run(instance, predictor, prior).reconstructions[T_MINUS_1]

        a, b = run_once(), run_once()
        np.testing.assert_array_equal(a.ranked_locations, b.ranked_locations)
