"""Property-based tests (hypothesis) for attack machinery invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import rank_locations
from repro.attacks.base import encode_candidates
from repro.data import FeatureSpec, SessionFeatures


@st.composite
def candidate_grids(draw):
    """Random candidate grids plus a spec that admits them."""
    num_locations = draw(st.integers(3, 12))
    spec = FeatureSpec(num_locations=num_locations)
    n = draw(st.integers(1, 8))
    entries = draw(
        st.lists(st.integers(0, spec.entry_bins - 1), min_size=n, max_size=n)
    )
    durations = draw(
        st.lists(st.integers(0, spec.duration_bins - 1), min_size=n, max_size=n)
    )
    locations = draw(st.lists(st.integers(0, num_locations - 1), min_size=n, max_size=n))
    day = draw(st.integers(0, 6))
    return spec, n, np.array(entries), np.array(durations), np.array(locations), day


@settings(max_examples=40, deadline=None)
@given(candidate_grids())
def test_encode_candidates_decode_roundtrip(setup):
    """Every encoded candidate row decodes back to its grid values."""
    spec, n, entries, durations, locations, day = setup
    batch = encode_candidates(
        spec,
        {0: SessionFeatures(1, 1, 0, day)},
        {1: {"entry": entries, "duration": durations, "location": locations}},
        day,
        n,
    )
    for row in range(n):
        decoded = spec.decode(batch[row, 1])
        assert decoded.entry_bin == entries[row]
        assert decoded.duration_bin == durations[row]
        assert decoded.location == locations[row]
        assert decoded.day_of_week == day


@settings(max_examples=40, deadline=None)
@given(candidate_grids())
def test_encode_candidates_rows_are_valid_one_hots(setup):
    spec, n, entries, durations, locations, day = setup
    batch = encode_candidates(
        spec,
        {},
        {
            0: {"entry": entries, "duration": durations, "location": locations},
            1: {"entry": entries, "duration": durations, "location": locations},
        },
        day,
        n,
    )
    np.testing.assert_allclose(batch.sum(axis=-1), np.full((n, 2), 4.0))
    assert set(np.unique(batch)) <= {0.0, 1.0}


@st.composite
def scored_candidates(draw):
    num_locations = draw(st.integers(3, 10))
    n = draw(st.integers(1, 30))
    locations = draw(
        st.lists(st.integers(0, num_locations - 1), min_size=n, max_size=n)
    )
    scores = draw(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=n, max_size=n)
    )
    prior_raw = draw(
        st.lists(st.floats(0.01, 1.0), min_size=num_locations, max_size=num_locations)
    )
    prior = np.array(prior_raw)
    return np.array(locations), np.array(scores), prior / prior.sum()


@settings(max_examples=50, deadline=None)
@given(scored_candidates())
def test_rank_locations_is_permutation_of_candidates(setup):
    locations, scores, prior = setup
    ranked, ranked_scores = rank_locations(locations, scores, prior)
    assert sorted(ranked.tolist()) == sorted(set(locations.tolist()))
    # Scores are non-increasing down the ranking.
    assert all(ranked_scores[i] >= ranked_scores[i + 1] - 1e-12 for i in range(len(ranked) - 1))


@settings(max_examples=50, deadline=None)
@given(scored_candidates())
def test_rank_locations_invariant_to_candidate_order(setup):
    locations, scores, prior = setup
    ranked_a, _ = rank_locations(locations, scores, prior)
    permutation = np.random.default_rng(0).permutation(len(locations))
    ranked_b, _ = rank_locations(locations[permutation], scores[permutation], prior)
    np.testing.assert_array_equal(ranked_a, ranked_b)


@settings(max_examples=50, deadline=None)
@given(scored_candidates())
def test_rank_locations_top_is_argmax_score(setup):
    locations, scores, prior = setup
    ranked, ranked_scores = rank_locations(locations, scores, prior)
    assert ranked_scores[0] == scores.max()
