"""The privacy-audit adversary as a serving workload (DESIGN.md §10).

Pins the tentpole guarantees:

* **ranking parity** — the batched audit path (probes grouped per user
  and dispatched through the fused probe kernel) produces reconstruction
  rankings bit-identical to looping ``InversionAttack.run`` against the
  bare endpoints *and* to the one-query-per-probe looped reference;
* **accounting** — probe traffic is billed in the fleet books (queries,
  batches, MACs, network) and mirrored into the adversary attribution
  overlay; per-endpoint query ledgers conserve; the looped reference is
  accounting-neutral;
* **event-clock integration** — probes ride QUERY events: they coalesce,
  defer under chaos (rankings invariant), and route/fail over across
  cluster shards (rankings still invariant);
* **defenses** — release-time output defenses are deterministic and the
  temperature defense never *increases* leakage.
"""

import copy

import numpy as np
import pytest

from repro.attacks import (
    AdversaryClass,
    AuditAdversary,
    AuditTarget,
    BruteForceAttack,
    GradientDescentAttack,
    TimeBasedAttack,
    evaluate_attack,
    run_fleet_audit,
    run_fleet_audit_looped,
    true_prior,
)
from repro.attacks.fleet_adversary import audit_requests, rankings
from repro.data import SpatialLevel
from repro.models import GeneralModelConfig, PersonalizationConfig
from repro.pelican import (
    ChaosFleet,
    ChaosPolicy,
    Cluster,
    DeploymentMode,
    Fleet,
    FleetSchedule,
    Pelican,
    PelicanConfig,
)

LEVEL = SpatialLevel.BUILDING
MAX_INSTANCES = 3


@pytest.fixture(scope="module")
def audit_base(tiny_corpus):
    """(pristine trained pelican, onboarded fleet, splits, targets)."""
    pelican = Pelican(
        tiny_corpus.spec(LEVEL),
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=16, epochs=2, patience=None),
            personalization=PersonalizationConfig(epochs=2, patience=None),
            privacy_temperature=1e-3,
            seed=3,
        ),
    )
    train, _ = tiny_corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    pelican.initial_training(train)
    splits = {
        uid: tiny_corpus.user_dataset(uid, LEVEL).split(0.8)
        for uid in tiny_corpus.personal_ids
    }
    pristine = copy.deepcopy(pelican)
    fleet = Fleet(pelican, registry_capacity=1)
    for i, uid in enumerate(tiny_corpus.personal_ids):
        mode = DeploymentMode.CLOUD if i % 2 == 0 else DeploymentMode.LOCAL
        fleet.onboard(uid, splits[uid][0], deployment=mode)
    targets = [
        AuditTarget(
            user_id=uid,
            attack_windows=splits[uid][1],
            prior=true_prior(splits[uid][0]),
        )
        for uid in tiny_corpus.personal_ids
    ]
    return pristine, fleet, splits, targets


def make_adversary(**kwargs):
    defaults = dict(
        attack=TimeBasedAttack(),
        adversary=AdversaryClass.A1,
        max_instances=MAX_INSTANCES,
    )
    defaults.update(kwargs)
    return AuditAdversary(**defaults)


class TestRankingParity:
    def test_batched_matches_bare_attack_run_bitwise(self, audit_base):
        """The tentpole gate: fleet-served probes reconstruct exactly what
        looping InversionAttack.run against the bare predictors does."""
        _, fleet, splits, targets = audit_base
        fleet = copy.deepcopy(fleet)
        evaluation, _ = run_fleet_audit(fleet, make_adversary(), targets)

        bare_targets = {
            t.user_id: (
                fleet.pelican.users[t.user_id].endpoint.predictor,
                t.attack_windows,
                t.prior,
            )
            for t in targets
        }
        bare = evaluate_attack(
            TimeBasedAttack(), bare_targets, AdversaryClass.A1,
            max_instances=MAX_INSTANCES,
        )
        assert rankings(evaluation) == rankings(bare)
        assert evaluation.total_queries == bare.total_queries
        for k in (1, 2, 3):
            assert evaluation.accuracy(k) == bare.accuracy(k)

    def test_batched_matches_looped_reference(self, audit_base):
        _, fleet, _, targets = audit_base
        fleet = copy.deepcopy(fleet)
        adversary = make_adversary()
        looped = run_fleet_audit_looped(fleet, adversary, targets)
        batched, _ = run_fleet_audit(fleet, adversary, targets)
        assert rankings(batched) == rankings(looped)

    def test_a2_and_brute_force_parity(self, audit_base):
        _, fleet, _, targets = audit_base
        fleet = copy.deepcopy(fleet)
        for attack, adv_class in (
            (TimeBasedAttack(), AdversaryClass.A2),
            (BruteForceAttack(), AdversaryClass.A1),
        ):
            adversary = make_adversary(attack=attack, adversary=adv_class)
            evaluation, _ = run_fleet_audit(fleet, adversary, targets)
            bare_targets = {
                t.user_id: (
                    fleet.pelican.users[t.user_id].endpoint.predictor,
                    t.attack_windows,
                    t.prior,
                )
                for t in targets
            }
            bare = evaluate_attack(
                type(attack)(), bare_targets, adv_class, max_instances=MAX_INSTANCES
            )
            assert rankings(evaluation) == rankings(bare)

    def test_gradient_attack_rejected(self):
        with pytest.raises(TypeError, match="white-box"):
            AuditAdversary(GradientDescentAttack())

    def test_incompatible_adversary_class_rejected_upfront(self):
        # Brute force cannot plan the doubly-missing A3 window; the
        # pairing must fail at construction, not mid-audit.
        with pytest.raises(ValueError, match="cannot plan"):
            AuditAdversary(BruteForceAttack(), AdversaryClass.A3)

    def test_serve_looped_rejects_probe_payloads(self, audit_base):
        _, fleet, _, targets = audit_base
        requests, _ = audit_requests(
            make_adversary(), fleet.pelican.spec, targets[:1]
        )
        with pytest.raises(TypeError, match="run_fleet_audit_looped"):
            fleet.serve_looped(requests[:1])

    def test_shared_plans_reproduce_per_cell_plans(self, audit_base):
        """The audit suite derives plans once per adversary and shares
        them across defenses — same probes either way."""
        _, fleet, _, targets = audit_base
        spec = fleet.pelican.spec
        adversary = make_adversary()
        planned = adversary.plan_for(spec, targets[0])
        fresh = adversary.probes_for(spec, targets[0])
        shared = adversary.probes_for(spec, targets[0], planned=planned)
        assert len(fresh) == len(shared)
        for a, b in zip(fresh, shared):
            assert a.plan.n == b.plan.n
            for step, grids in a.plan.candidate_features.items():
                for name, grid in grids.items():
                    assert (grid == b.plan.candidate_features[step][name]).all()


class TestAccounting:
    def test_probe_traffic_billed_and_attributed(self, audit_base):
        _, fleet0, _, targets = audit_base
        fleet = copy.deepcopy(fleet0)
        before = fleet.report.signature()
        adversary = make_adversary()
        evaluation, responses = run_fleet_audit(fleet, adversary, targets)
        after = fleet.report.signature()

        num_probes = evaluation.total_queries
        assert num_probes > 0
        # Billed in the totals AND mirrored into the adversary overlay.
        assert after["queries"] - before["queries"] == num_probes
        assert after["adversary_queries"] - before["adversary_queries"] == num_probes
        assert after["adversary_batches"] - before["adversary_batches"] == len(targets)
        assert after["batches"] - before["batches"] == len(targets)
        # Both serving sides did adversary work (mixed deployment) and
        # the overlay is a subset of the totals, never an extra book.
        assert 0 < after["adversary_cloud_macs"] <= after["cloud_macs"]
        assert 0 < after["adversary_device_macs"] <= after["device_macs"]
        assert after["adversary_network_seconds"] <= after["network_seconds"]

    def test_per_endpoint_query_conservation(self, audit_base):
        _, fleet0, _, targets = audit_base
        fleet = copy.deepcopy(fleet0)
        before = {
            uid: user.endpoint.stats.queries
            for uid, user in fleet.pelican.users.items()
        }
        evaluation, _ = run_fleet_audit(fleet, make_adversary(), targets)
        for uid, result in evaluation.per_user.items():
            moved = fleet.pelican.users[uid].endpoint.stats.queries - before[uid]
            assert moved == result.total_queries

    def test_looped_reference_is_accounting_neutral(self, audit_base):
        _, fleet0, _, targets = audit_base
        fleet = copy.deepcopy(fleet0)
        signature = fleet.report.signature()
        channel = fleet.pelican.channel.checkpoint()
        counts = {
            uid: user.endpoint.predictor.query_count
            for uid, user in fleet.pelican.users.items()
        }
        run_fleet_audit_looped(fleet, make_adversary(), targets)
        assert fleet.report.signature() == signature
        assert fleet.pelican.channel.checkpoint() == channel
        assert counts == {
            uid: user.endpoint.predictor.query_count
            for uid, user in fleet.pelican.users.items()
        }


class TestEventClock:
    def test_scheduled_probes_match_direct_serve(self, audit_base, tiny_corpus):
        """Probes issued as schedule events reconstruct identically to the
        same probes served as one direct burst."""
        _, fleet0, _, targets = audit_base
        adversary = make_adversary()

        direct_fleet = copy.deepcopy(fleet0)
        direct, _ = run_fleet_audit(direct_fleet, adversary, targets)

        fleet = copy.deepcopy(fleet0)
        schedule = FleetSchedule()
        by_seq = adversary.schedule_probes(
            schedule, 100.0, fleet.pelican.spec, targets
        )
        responses = fleet.run(schedule)
        assert len(responses) == len(by_seq)
        priors = {t.user_id: t.prior for t in targets}
        scheduled = adversary.evaluate(
            [(by_seq[r.seq], r.confidences) for r in responses], priors
        )
        assert rankings(scheduled) == rankings(direct)

    def test_probe_rankings_invariant_under_churn(self, audit_base):
        """Chaos defers probe events but never changes what they observe —
        an audit's leakage measurement is fault-timing invariant."""
        pristine, _, splits, targets = audit_base
        adversary = make_adversary()

        def leak(policy):
            fleet = ChaosFleet(
                copy.deepcopy(pristine), policy, registry_capacity=1
            )
            for i, uid in enumerate(splits):
                mode = DeploymentMode.CLOUD if i % 2 == 0 else DeploymentMode.LOCAL
                fleet.onboard(uid, splits[uid][0], deployment=mode)
            schedule = FleetSchedule()
            by_seq = adversary.schedule_probes(
                schedule, 50.0, fleet.pelican.spec, targets
            )
            responses = fleet.run(schedule)
            priors = {t.user_id: t.prior for t in targets}
            evaluation = adversary.evaluate(
                [(by_seq[r.seq], r.confidences) for r in responses], priors
            )
            return rankings(evaluation), fleet

        clean, _ = leak(ChaosPolicy())
        churned, fleet = leak(
            ChaosPolicy(name="churn", seed=5, offline_window_rate=2.0,
                        offline_window_duration=12.0)
        )
        assert churned == clean
        # Probe exchanges flow over the faulty channel, so retries bill
        # the adversary book too (lossy policies inflate it).
        assert fleet.report.adversary_queries > 0

    def test_cluster_probes_and_failover(self, audit_base, tiny_corpus):
        """Probes route per placement on a cluster; during an outage they
        fail over to the next alive shard — rankings invariant."""
        pristine, _, splits, targets = audit_base
        adversary = make_adversary()

        def cluster_leak(policy):
            cluster = Cluster.from_trained(
                copy.deepcopy(pristine), num_shards=2, registry_capacity=1,
                policy=policy,
            )
            for i, uid in enumerate(splits):
                mode = DeploymentMode.CLOUD if i % 2 == 0 else DeploymentMode.LOCAL
                cluster.onboard(uid, splits[uid][0], deployment=mode)
            schedule = FleetSchedule()
            by_seq = adversary.schedule_probes(schedule, 50.0, cluster.spec, targets)
            responses = cluster.run(schedule)
            priors = {t.user_id: t.prior for t in targets}
            evaluation = adversary.evaluate(
                [(by_seq[r.seq], r.confidences) for r in responses], priors
            )
            return rankings(evaluation), cluster

        single_fleet = copy.deepcopy(audit_base[1])
        single, _ = run_fleet_audit(single_fleet, adversary, targets)

        clean, cluster = cluster_leak(None)
        assert clean == rankings(single)
        assert cluster.report.adversary_queries == single_fleet.report.adversary_queries

        outage, chaotic = cluster_leak(
            ChaosPolicy(name="shard_outage", seed=1, shard_outage_rate=3.0,
                        shard_outage_duration=60.0)
        )
        assert outage == clean


class TestDefenses:
    def test_release_defense_deterministic(self, audit_base):
        from repro.pelican import GaussianNoiseDefense

        _, fleet0, _, targets = audit_base
        factory = lambda predictor, key: GaussianNoiseDefense(
            predictor, sigma=0.05, seed=key
        )
        runs = []
        for _ in range(2):
            fleet = copy.deepcopy(fleet0)
            evaluation, _ = run_fleet_audit(
                fleet, make_adversary(release_factory=factory), targets
            )
            runs.append(rankings(evaluation))
        assert runs[0] == runs[1]

    def test_gaussian_release_parity_batched_vs_looped(self, audit_base):
        """Seeded per-instance generators draw the same perturbation stream
        whether probes run chunked or one row at a time."""
        from repro.pelican import GaussianNoiseDefense

        _, fleet0, _, targets = audit_base
        fleet = copy.deepcopy(fleet0)
        factory = lambda predictor, key: GaussianNoiseDefense(
            predictor, sigma=0.05, seed=key
        )
        adversary = make_adversary(release_factory=factory)
        looped = run_fleet_audit_looped(fleet, adversary, targets)
        batched, _ = run_fleet_audit(fleet, adversary, targets)
        assert rankings(batched) == rankings(looped)

    def test_temperature_defense_never_increases_top1_leakage(self, tiny_corpus, audit_base):
        """The paper's headline: the privacy layer blunts the inversion
        attack (top-1, id tie-break) while the audit measures through the
        full serving stack."""
        pristine, _, splits, targets = audit_base

        def leakage(temperature):
            fleet = Fleet(copy.deepcopy(pristine), registry_capacity=1)
            for i, uid in enumerate(splits):
                mode = DeploymentMode.CLOUD if i % 2 == 0 else DeploymentMode.LOCAL
                fleet.onboard(
                    uid, splits[uid][0], deployment=mode,
                    privacy_temperature=temperature,
                )
            evaluation, _ = run_fleet_audit(fleet, make_adversary(), targets)
            return evaluation.accuracy(1)

        assert leakage(1e-3) <= leakage(1.0)
