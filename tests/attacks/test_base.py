"""Unit tests for shared attack machinery."""

import numpy as np
import pytest

from repro.attacks import rank_locations
from repro.attacks.base import encode_candidates
from repro.data import FeatureSpec, SessionFeatures


class TestEncodeCandidates:
    def test_matches_spec_encode(self):
        spec = FeatureSpec(num_locations=6)
        known = {0: SessionFeatures(3, 2, 1, 4)}
        grids = {1: {"entry": np.array([5]), "duration": np.array([7]), "location": np.array([2])}}
        batch = encode_candidates(spec, known, grids, day_of_week=4, n=1)
        expected_known = spec.encode(known[0])
        expected_missing = spec.encode(SessionFeatures(5, 7, 2, 4))
        np.testing.assert_array_equal(batch[0, 0], expected_known)
        np.testing.assert_array_equal(batch[0, 1], expected_missing)

    def test_vectorized_rows_differ(self):
        spec = FeatureSpec(num_locations=4)
        known = {0: SessionFeatures(0, 0, 0, 0)}
        grids = {
            1: {
                "entry": np.array([0, 1, 2]),
                "duration": np.array([0, 0, 0]),
                "location": np.array([1, 2, 3]),
            }
        }
        batch = encode_candidates(spec, known, grids, day_of_week=0, n=3)
        assert batch.shape == (3, 2, spec.width)
        for row, (entry, loc) in enumerate([(0, 1), (1, 2), (2, 3)]):
            assert batch[row, 1, spec.entry_offset + entry] == 1.0
            assert batch[row, 1, spec.location_offset + loc] == 1.0

    def test_every_row_is_valid_one_hot(self):
        spec = FeatureSpec(num_locations=4)
        grids = {
            0: {
                "entry": np.array([1, 2]),
                "duration": np.array([3, 4]),
                "location": np.array([0, 1]),
            },
            1: {
                "entry": np.array([5, 6]),
                "duration": np.array([7, 8]),
                "location": np.array([2, 3]),
            },
        }
        batch = encode_candidates(spec, {}, grids, day_of_week=6, n=2)
        np.testing.assert_allclose(batch.sum(axis=-1), np.full((2, 2), 4.0))


class TestRankLocations:
    def test_ranks_by_best_score(self):
        locations = np.array([0, 0, 1, 1, 2])
        scores = np.array([0.1, 0.3, 0.9, 0.2, 0.5])
        prior = np.array([0.3, 0.3, 0.4])
        ranked, ranked_scores = rank_locations(locations, scores, prior)
        np.testing.assert_array_equal(ranked, [1, 2, 0])
        np.testing.assert_allclose(ranked_scores, [0.9, 0.5, 0.3])

    def test_default_ties_broken_by_id(self):
        """Paper-faithful behavior: saturated (defended) scores tie and
        resolve in enumeration order, which is what blunts the attack."""
        locations = np.array([0, 1, 2])
        scores = np.array([1.0, 1.0, 1.0])  # saturated (defended model)
        prior = np.array([0.1, 0.6, 0.3])
        ranked, _ = rank_locations(locations, scores, prior)
        np.testing.assert_array_equal(ranked, [0, 1, 2])

    def test_prior_tie_break_evades_saturation(self):
        """The stronger adversary variant falls back on the prior."""
        locations = np.array([0, 1, 2])
        scores = np.array([1.0, 1.0, 1.0])
        prior = np.array([0.1, 0.6, 0.3])
        ranked, _ = rank_locations(locations, scores, prior, tie_break="prior")
        np.testing.assert_array_equal(ranked, [1, 2, 0])

    def test_invalid_tie_break_rejected(self):
        with pytest.raises(ValueError):
            rank_locations(np.array([0]), np.array([1.0]), np.array([1.0]), tie_break="x")

    def test_full_ties_deterministic_by_id(self):
        locations = np.array([3, 1, 2])
        scores = np.ones(3)
        prior = np.full(5, 0.2)
        ranked, _ = rank_locations(locations, scores, prior)
        np.testing.assert_array_equal(ranked, [1, 2, 3])

    def test_only_candidate_locations_returned(self):
        locations = np.array([4, 4, 7])
        scores = np.array([0.5, 0.6, 0.1])
        prior = np.full(10, 0.1)
        ranked, _ = rank_locations(locations, scores, prior)
        assert set(ranked) == {4, 7}


def test_encode_candidates_rejects_gap_windows():
    import numpy as np
    import pytest
    from repro.attacks.base import encode_candidates
    from repro.data import FeatureSpec, SessionFeatures

    spec = FeatureSpec(num_locations=5)
    known = {0: SessionFeatures(entry_bin=1, duration_bin=1, location=1, day_of_week=0)}
    grids = {2: {"entry": np.zeros(3, dtype=int), "duration": np.zeros(3, dtype=int), "location": np.arange(3)}}
    with pytest.raises(ValueError, match="contiguous"):
        encode_candidates(spec, known, grids, day_of_week=0, n=3)
