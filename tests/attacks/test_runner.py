"""Unit tests for attack orchestration and accuracy aggregation."""

import numpy as np
import pytest

from repro.attacks import AdversaryClass, AttackEvaluation, AttackOutput, Reconstruction
from repro.attacks.adversary import AttackInstance, T_MINUS_1
from repro.attacks.runner import UserAttackResult
from repro.data import SessionFeatures


def make_output(true_location, ranked, queries=10, seconds=0.5):
    features = SessionFeatures(0, 0, true_location, 0)
    instance = AttackInstance(
        adversary=AdversaryClass.A1,
        known={0: SessionFeatures(0, 0, 0, 0)},
        missing=(T_MINUS_1,),
        observed_output=0,
        day_of_week=0,
        truth={T_MINUS_1: features},
    )
    recon = Reconstruction(
        step=T_MINUS_1,
        ranked_locations=np.array(ranked),
        scores=np.linspace(1, 0, len(ranked)),
    )
    return AttackOutput(
        instance=instance,
        reconstructions={T_MINUS_1: recon},
        num_queries=queries,
        elapsed_seconds=seconds,
    )


class TestReconstruction:
    def test_hit_semantics(self):
        recon = Reconstruction(0, np.array([4, 2, 7]), np.array([3.0, 2.0, 1.0]))
        assert recon.hit(4, 1)
        assert not recon.hit(2, 1)
        assert recon.hit(2, 2)
        assert not recon.hit(9, 3)


class TestUserResult:
    def test_accuracy_over_outputs(self):
        result = UserAttackResult(user_id=1)
        result.outputs.append(make_output(true_location=3, ranked=[3, 1, 2]))  # top-1 hit
        result.outputs.append(make_output(true_location=5, ranked=[1, 5, 2]))  # top-2 hit
        assert result.accuracy(1) == 0.5
        assert result.accuracy(2) == 1.0

    def test_totals(self):
        result = UserAttackResult(user_id=1)
        result.outputs.append(make_output(3, [3], queries=7, seconds=1.0))
        result.outputs.append(make_output(3, [3], queries=5, seconds=2.0))
        assert result.total_queries == 12
        assert result.total_seconds == 3.0

    def test_empty_accuracy_is_nan(self):
        assert np.isnan(UserAttackResult(user_id=1).accuracy(1))


class TestEvaluation:
    def test_pools_across_users(self):
        evaluation = AttackEvaluation(attack_name="x", adversary=AdversaryClass.A1)
        u1 = UserAttackResult(user_id=1)
        u1.outputs.append(make_output(3, [3, 1]))
        u2 = UserAttackResult(user_id=2)
        u2.outputs.append(make_output(5, [1, 2]))
        evaluation.per_user = {1: u1, 2: u2}
        assert evaluation.accuracy(1) == 0.5
        assert evaluation.accuracy_series([1, 2]) == {1: 0.5, 2: 0.5}
        assert evaluation.per_user_accuracy(1) == {1: 1.0, 2: 0.0}
        assert evaluation.total_queries == 20

    def test_monotone_in_k(self):
        evaluation = AttackEvaluation(attack_name="x", adversary=AdversaryClass.A1)
        user = UserAttackResult(user_id=1)
        for true_loc in (0, 1, 2, 3):
            user.outputs.append(make_output(true_loc, [0, 1, 2, 3]))
        evaluation.per_user = {1: user}
        accs = [evaluation.accuracy(k) for k in (1, 2, 3, 4)]
        assert accs == sorted(accs)
        assert accs[-1] == 1.0
