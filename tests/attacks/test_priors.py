"""Unit tests for prior-knowledge generation methods."""

import numpy as np
import pytest

from repro.attacks import (
    PriorMethod,
    build_prior,
    estimated_prior,
    predicted_prior,
    prune_locations,
    true_prior,
    uniform_prior,
)
from repro.data import SpatialLevel
from repro.models import NextLocationPredictor


@pytest.fixture(scope="module")
def user_setup(tiny_corpus, tiny_general):
    general, _, _ = tiny_general
    spec = tiny_corpus.spec(SpatialLevel.BUILDING)
    uid = tiny_corpus.personal_ids[0]
    train, test = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).split(0.8)
    predictor = NextLocationPredictor(general, spec)
    return spec, train, test, predictor


class TestPriors:
    def test_all_methods_return_distributions(self, user_setup):
        spec, train, test, predictor = user_setup
        for method in PriorMethod:
            prior = build_prior(
                method,
                spec.num_locations,
                train_dataset=train,
                predictor=predictor,
                probe_windows=test,
            )
            assert prior.shape == (spec.num_locations,)
            np.testing.assert_allclose(prior.sum(), 1.0, atol=1e-9)
            assert np.all(prior >= 0)

    def test_uniform_prior(self):
        prior = uniform_prior(8)
        np.testing.assert_allclose(prior, np.full(8, 1 / 8))

    def test_true_prior_tracks_frequencies(self, user_setup):
        spec, train, _, _ = user_setup
        prior = true_prior(train, smoothing=0.0)
        visited = {f.location for w in train.windows for f in w.history}
        top_location = int(np.argmax(prior))
        assert top_location in visited

    def test_estimated_prior_structure(self):
        prior = estimated_prior(most_probable=2, num_locations=5)
        assert prior[2] == 0.75
        others = np.delete(prior, 2)
        np.testing.assert_allclose(others, np.full(4, 0.25 / 4))

    def test_predicted_prior_uses_probes(self, user_setup):
        spec, _, test, predictor = user_setup
        prior = predicted_prior(predictor, test, max_probes=10)
        assert prior.max() > 1.0 / spec.num_locations  # informative

    def test_true_requires_train_dataset(self):
        with pytest.raises(ValueError):
            build_prior(PriorMethod.TRUE, 5)

    def test_predict_requires_predictor(self):
        with pytest.raises(ValueError):
            build_prior(PriorMethod.PREDICT, 5)


class TestPruning:
    def test_prune_reduces_domain(self, user_setup):
        spec, _, test, predictor = user_setup
        pruned = prune_locations(predictor, test, threshold=0.01)
        assert 0 < len(pruned) <= spec.num_locations

    def test_high_threshold_keeps_fewer(self, user_setup):
        spec, _, test, predictor = user_setup
        loose = prune_locations(predictor, test, threshold=0.001)
        tight = prune_locations(predictor, test, threshold=0.5)
        assert len(tight) <= len(loose)

    def test_empty_probes_fall_back_to_full_domain(self, user_setup):
        from repro.data import SequenceDataset

        spec, _, _, predictor = user_setup
        empty = SequenceDataset(spec=spec)
        pruned = prune_locations(predictor, empty)
        assert len(pruned) == spec.num_locations
