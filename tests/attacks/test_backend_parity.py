"""Fused-vs-reference backend parity for the inversion attacks.

Acceptance-level guarantee for the fused compute path: the
gradient-descent attack and the brute-force enumeration attack must
produce the *same location rankings* (same seeds) whether the model runs
on the fused kernels or on the reference cell graph — the reproduced
attack numbers cannot depend on the execution backend.
"""

import numpy as np
import pytest

from repro.attacks import (
    AdversaryClass,
    BruteForceAttack,
    GradientDescentAttack,
    T_MINUS_1,
    build_instance,
    uniform_prior,
)
from repro.data import SpatialLevel
from repro.models import NextLocationPredictor


@pytest.fixture
def target(tiny_corpus, tiny_general):
    general, _, _ = tiny_general
    spec = tiny_corpus.spec(SpatialLevel.BUILDING)
    uid = tiny_corpus.personal_ids[0]
    window = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).windows[0]
    instance = build_instance(window, AdversaryClass.A1)
    return general, spec, instance


def _with_backend(model, backend):
    model.set_backend(backend)
    return model


class TestBackendParity:
    def test_confidences_match_across_backends(self, target):
        general, spec, instance = target
        rng = np.random.default_rng(0)
        batch = rng.random((8, 2, spec.width))
        probs = {}
        for backend in ("fused", "reference"):
            predictor = NextLocationPredictor(_with_backend(general, backend), spec)
            probs[backend] = predictor.confidences_encoded(batch)
        _with_backend(general, "fused")
        np.testing.assert_allclose(probs["fused"], probs["reference"], rtol=1e-9, atol=1e-12)

    def test_brute_force_rankings_match(self, target):
        general, spec, instance = target
        prior = uniform_prior(spec.num_locations)
        rankings = {}
        for backend in ("fused", "reference"):
            predictor = NextLocationPredictor(_with_backend(general, backend), spec)
            output = BruteForceAttack().run(instance, predictor, prior)
            rankings[backend] = output.reconstructions[T_MINUS_1].ranked_locations
        _with_backend(general, "fused")
        np.testing.assert_array_equal(rankings["fused"], rankings["reference"])

    def test_gradient_descent_rankings_match(self, target):
        general, spec, instance = target
        prior = uniform_prior(spec.num_locations)
        rankings = {}
        for backend in ("fused", "reference"):
            predictor = NextLocationPredictor(_with_backend(general, backend), spec)
            attack = GradientDescentAttack(seed=42)
            attack.config.iterations = 12
            output = attack.run(instance, predictor, prior)
            rankings[backend] = output.reconstructions[T_MINUS_1].ranked_locations
        _with_backend(general, "fused")
        np.testing.assert_array_equal(rankings["fused"], rankings["reference"])
