"""Unit tests for adversary knowledge models (Table I)."""

import pytest

from repro.attacks import (
    AdversaryClass,
    T_MINUS_1,
    T_MINUS_2,
    build_instance,
    build_instances,
)
from repro.data import FeatureSpec, SequenceDataset, SessionFeatures
from repro.data.dataset import Window


@pytest.fixture
def window():
    return Window(
        user_id=9,
        history=(
            SessionFeatures(entry_bin=10, duration_bin=5, location=2, day_of_week=1),
            SessionFeatures(entry_bin=12, duration_bin=3, location=4, day_of_week=1),
        ),
        target=6,
        day_index=3,
        contiguous=True,
    )


class TestKnowledgeSets:
    def test_a1_missing_t_minus_1(self):
        assert AdversaryClass.A1.known_steps == (T_MINUS_2,)
        assert AdversaryClass.A1.missing_steps == (T_MINUS_1,)

    def test_a2_missing_t_minus_2(self):
        assert AdversaryClass.A2.known_steps == (T_MINUS_1,)
        assert AdversaryClass.A2.missing_steps == (T_MINUS_2,)

    def test_a3_missing_both(self):
        assert AdversaryClass.A3.known_steps == ()
        assert AdversaryClass.A3.missing_steps == (T_MINUS_2, T_MINUS_1)


class TestInstances:
    def test_a1_instance(self, window):
        instance = build_instance(window, AdversaryClass.A1)
        assert set(instance.known) == {T_MINUS_2}
        assert instance.known[T_MINUS_2].location == 2
        assert instance.missing == (T_MINUS_1,)
        assert instance.observed_output == 6
        assert instance.true_location(T_MINUS_1) == 4

    def test_a2_instance(self, window):
        instance = build_instance(window, AdversaryClass.A2)
        assert set(instance.known) == {T_MINUS_1}
        assert instance.true_location(T_MINUS_2) == 2

    def test_a3_instance_has_no_known_steps(self, window):
        instance = build_instance(window, AdversaryClass.A3)
        assert instance.known == {}
        assert set(instance.missing) == {T_MINUS_2, T_MINUS_1}

    def test_day_of_week_exposed(self, window):
        instance = build_instance(window, AdversaryClass.A3)
        assert instance.day_of_week == 1

    def test_build_instances_batches(self, window):
        instances = build_instances([window, window], AdversaryClass.A1)
        assert len(instances) == 2
