"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.data import load_ap_sessions


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_corpus_defaults(self):
        args = build_parser().parse_args(["corpus"])
        assert args.buildings == 40
        assert args.output == "corpus.npz"

    def test_experiment_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table3", "--scale", "huge"])

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.scale == "tiny"
        assert args.queries_per_user == 32
        assert args.capacity == 64
        assert args.shards == 1
        assert args.placement == "hash"
        assert not args.fast

    def test_placement_choices(self):
        args = build_parser().parse_args(["fleet", "--placement", "least_loaded"])
        assert args.placement == "least_loaded"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--placement", "alphabetical"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios", "--placement", "alphabetical"])

    def test_scenarios_defaults(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.scale == "tiny"
        assert args.regimes == ["campus", "commuter", "tourist"]
        assert args.policies == ["none", "lossy_network", "churn"]
        assert args.queries_per_user == 4
        assert args.chaos_seed == 0

    def test_scenarios_rejects_unknown_regime_and_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios", "--regimes", "astronaut"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios", "--policies", "meteor_strike"])

    def test_audit_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.scale == "tiny"
        assert args.regimes == ["campus"]
        assert args.defense == ["none", "temperature"]
        assert args.adversary == ["A1"]
        assert args.attack == "time_based"
        assert args.policy == "none"
        assert args.shards == 1
        assert not args.fast

    def test_audit_rejects_unknown_defense_adversary_attack(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--defense", "mirror"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--adversary", "A9"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--attack", "gradient"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_corpus_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "corpus.npz"
        code = main(
            [
                "corpus",
                "--buildings", "12",
                "--contributors", "2",
                "--personal", "1",
                "--days", "5",
                "-o", str(out_path),
            ]
        )
        assert code == 0
        assert out_path.exists()
        sessions = load_ap_sessions(out_path)
        assert len(sessions) == 3  # 2 contributors + 1 personal

    def test_fleet_fast_run(self, capsys):
        code = main(
            ["fleet", "--fast", "--queries-per-user", "4", "--capacity", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "parity: identical outputs" in out
        assert "batched serving" in out
        assert "registry" in out

    def test_fleet_capacity_zero_is_unbounded(self, capsys):
        code = main(
            ["fleet", "--fast", "--queries-per-user", "2", "--capacity", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "unbounded" in out

    def test_fleet_sharded_run(self, capsys):
        code = main(
            ["fleet", "--fast", "--queries-per-user", "4", "--shards", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "parity: identical outputs" in out
        assert "on 2 shards" in out
        assert "per-shard breakdown" in out
        assert "shard 1:" in out

    def test_fleet_shards_zero_rejected(self, capsys):
        assert main(["fleet", "--fast", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_scenarios_sharded_run(self, capsys):
        code = main(
            [
                "scenarios", "--fast",
                "--regimes", "campus",
                "--policies", "none", "shard_outage",
                "--queries-per-user", "2",
                "--shards", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 shards" in out
        assert "shard_outage" in out

    def test_scenarios_fast_run(self, capsys):
        code = main(
            [
                "scenarios", "--fast",
                "--regimes", "campus", "nomad",
                "--policies", "none", "hostile",
                "--queries-per-user", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario matrix @ tiny" in out
        assert "nomad" in out and "hostile" in out

    def test_scenarios_capacity_negative_rejected(self, capsys):
        assert main(["scenarios", "--fast", "--capacity", "-1"]) == 2
        assert "--capacity" in capsys.readouterr().err

    def test_audit_fast_run(self, capsys):
        code = main(["audit", "--fast", "--queries-per-user", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "privacy audit @ tiny" in out
        assert "temperature" in out
        assert "leak@1" in out
        assert "adv queries" in out

    def test_audit_sharded_chaos_run(self, capsys):
        code = main(
            [
                "audit", "--fast",
                "--defense", "none",
                "--queries-per-user", "1",
                "--shards", "2",
                "--policy", "shard_outage",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 shards" in out
        assert "shard_outage" in out

    def test_audit_capacity_negative_rejected(self, capsys):
        assert main(["audit", "--fast", "--capacity", "-1"]) == 2
        assert "--capacity" in capsys.readouterr().err

    def test_audit_shards_zero_rejected(self, capsys):
        assert main(["audit", "--fast", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_audit_incompatible_attack_adversary_rejected(self, capsys):
        # Clean exit-2 validation, not a mid-run traceback.
        code = main(["audit", "--fast", "--attack", "brute_force", "--adversary", "A3"])
        assert code == 2
        assert "cannot plan" in capsys.readouterr().err

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_ids_cover_all_paper_results(self):
        assert set(EXPERIMENTS) == {
            "table2", "fig2b", "fig2c", "fig3a", "fig3b", "fig3c",
            "table3", "table4", "overhead", "fig5a", "fig5b", "fig5c",
        }
