"""Fault-injection layer tests (DESIGN.md §8).

The chaos layer's contract has three parts, each covered here:

* faults change *cost and timing*, never answers (rankings survive every
  policy; retries and failed fetches land in the existing accounting);
* every faulty run is bit-deterministic (same policy seed + schedule ⇒
  identical responses, signature, and chaos counters);
* the null policy is byte-for-byte identical to running without the
  chaos layer at all.
"""

import copy

import numpy as np
import pytest

from repro.data import SpatialLevel
from repro.models import GeneralModelConfig, NextLocationModel, PersonalizationConfig
from repro.nn.serialization import logical_nbytes
from repro.pelican import (
    CHAOS_POLICIES,
    Channel,
    ChaosFleet,
    ChaosPolicy,
    ChaosStats,
    DeploymentMode,
    FaultyChannel,
    Fleet,
    FleetSchedule,
    FlakyModelRegistry,
    Pelican,
    PelicanConfig,
    QueryRequest,
    chaos_policy,
)

LEVEL = SpatialLevel.BUILDING


# ----------------------------------------------------------------------
# Policy plumbing
# ----------------------------------------------------------------------
class TestChaosPolicy:
    def test_null_detection(self):
        assert ChaosPolicy().is_null
        assert CHAOS_POLICIES["none"].is_null
        for name in ("lossy_network", "flaky_cloud", "churn", "hostile"):
            assert not CHAOS_POLICIES[name].is_null

    def test_presets_reseeded_by_name(self):
        policy = chaos_policy("lossy_network", seed=42)
        assert policy.seed == 42
        assert policy.drop_probability == CHAOS_POLICIES["lossy_network"].drop_probability
        with pytest.raises(KeyError, match="unknown chaos policy"):
            chaos_policy("meteor_strike")

    def test_keyed_rng_is_order_independent(self):
        policy = ChaosPolicy(seed=5)
        first = policy.rng(1, 7).random()
        policy.rng(2, 99).random()  # interleaved other-stream draw
        assert policy.rng(1, 7).random() == first


# ----------------------------------------------------------------------
# Faulty transport
# ----------------------------------------------------------------------
class TestFaultyChannel:
    def test_zero_probability_matches_clean_channel(self):
        clean = Channel()
        faulty = FaultyChannel(policy=ChaosPolicy(), chaos=ChaosStats())
        for channel in (clean, faulty):
            channel.upload(b"x" * 1000, label="blob")
            channel.bulk_download(256, 5, label="batch")
        assert faulty.bytes_up == clean.bytes_up
        assert faulty.bytes_down == clean.bytes_down
        assert faulty.total_simulated_seconds == clean.total_simulated_seconds
        assert faulty.transfer_count == clean.transfer_count

    def test_retries_inflate_books_and_records(self):
        policy = ChaosPolicy(seed=1, drop_probability=0.5, max_retries=4)
        faulty = FaultyChannel(policy=policy, chaos=ChaosStats())
        clean = Channel()
        for channel in (clean, faulty):
            for i in range(20):
                channel.upload(b"y" * 512, label=f"t{i}")
        assert faulty.chaos.transfer_retries > 0
        assert faulty.bytes_up == clean.bytes_up + faulty.chaos.retry_bytes
        assert faulty.transfer_count == clean.transfer_count + faulty.chaos.transfer_retries
        np.testing.assert_allclose(
            faulty.total_simulated_seconds,
            clean.total_simulated_seconds + faulty.chaos.retry_seconds,
        )
        # Conservation: the records still sum to the running counters.
        assert sum(r.num_bytes for r in faulty.records) == faulty.bytes_up
        assert sum(r.count for r in faulty.records) == faulty.transfer_count

    def test_bulk_transfer_draws_per_logical_transfer(self):
        """Every device in a coalesced batch rolls its own dice."""
        policy = ChaosPolicy(seed=3, drop_probability=0.5, max_retries=3)
        faulty = FaultyChannel(policy=policy, chaos=ChaosStats())
        faulty.bulk_upload(100, 40, label="batch")
        [record] = faulty.records
        assert record.count == 40 + faulty.chaos.transfer_retries
        assert faulty.chaos.transfer_retries > 0
        assert record.num_bytes == 100 * record.count

    def test_deterministic_across_instances(self):
        def run():
            channel = FaultyChannel(
                policy=ChaosPolicy(seed=9, drop_probability=0.4), chaos=ChaosStats()
            )
            channel.bulk_upload(64, 10)
            channel.upload(b"z" * 999)
            return (
                channel.bytes_up,
                channel.total_simulated_seconds,
                channel.chaos.transfer_retries,
            )

        assert run() == run()

    def test_checkpoint_rollback_restores_draws_and_chaos(self):
        policy = ChaosPolicy(seed=2, drop_probability=0.5)
        faulty = FaultyChannel(policy=policy, chaos=ChaosStats())
        faulty.bulk_upload(128, 8)
        state = faulty.checkpoint()
        before = (
            faulty.bytes_up,
            faulty._draws,
            faulty.chaos.transfer_retries,
            faulty.chaos.retry_bytes,
            faulty.chaos.retry_seconds,
        )
        faulty.bulk_upload(128, 8)
        faulty.rollback(state)
        assert before == (
            faulty.bytes_up,
            faulty._draws,
            faulty.chaos.transfer_retries,
            faulty.chaos.retry_bytes,
            faulty.chaos.retry_seconds,
        )
        # The replay after rollback sees the identical fault sequence.
        faulty.bulk_upload(128, 8)
        replay = faulty.checkpoint()
        faulty.rollback(state)
        faulty.bulk_upload(128, 8)
        assert faulty.checkpoint() == replay

    def test_wrap_preserves_existing_traffic(self):
        clean = Channel()
        clean.upload(b"a" * 100, label="pre")
        faulty = FaultyChannel.wrap(clean, ChaosPolicy(), ChaosStats())
        assert faulty.bytes_up == 100
        assert faulty.transfer_count == 1
        assert faulty.records[0].label == "pre"


# ----------------------------------------------------------------------
# Flaky registry
# ----------------------------------------------------------------------
def _personal_model(seed=0):
    model = NextLocationModel(
        input_width=10,
        num_locations=6,
        hidden_size=8,
        num_layers=1,
        dropout=0.0,
        rng=np.random.default_rng(seed),
    )
    model.set_privacy_temperature(1e-3)
    model.eval()
    return model


class TestFlakyRegistry:
    def _thrash(self, policy):
        registry = FlakyModelRegistry(
            capacity=1, seed=0, policy=policy, chaos=ChaosStats()
        )
        originals = {uid: _personal_model(uid) for uid in (1, 2)}
        for uid, model in originals.items():
            registry.register(uid, model)
        for uid in (1, 2, 1, 2, 1):  # every get after the first is a cold load
            registry.get(uid)
        return registry, originals

    def test_zero_probability_matches_clean_cost(self):
        flaky, _ = self._thrash(ChaosPolicy())
        assert flaky.chaos.cold_load_failures == 0
        clean_seconds = sum(
            logical_nbytes(flaky._blobs[uid]) * 8 / (flaky.storage_mbps * 1e6)
            for uid in (1, 2, 1, 2, 1)
        )
        np.testing.assert_allclose(flaky.stats.simulated_load_seconds, clean_seconds)

    def test_failures_recharge_fetch_but_not_answers(self):
        policy = ChaosPolicy(seed=4, cold_load_failure_probability=0.6)
        flaky, originals = self._thrash(policy)
        assert flaky.chaos.cold_load_failures > 0
        assert flaky.chaos.cold_load_retry_seconds > 0
        clean, _ = self._thrash(ChaosPolicy())
        np.testing.assert_allclose(
            flaky.stats.simulated_load_seconds,
            clean.stats.simulated_load_seconds + flaky.chaos.cold_load_retry_seconds,
        )
        # Same eviction behaviour, and reloads stay bit-identical.
        assert flaky.stats.eviction_log == clean.stats.eviction_log
        batch = np.random.default_rng(0).normal(size=(2, 2, 10))
        np.testing.assert_array_equal(
            flaky.get(1).infer_logits(batch), originals[1].infer_logits(batch)
        )

    def test_deterministic(self):
        policy = ChaosPolicy(seed=4, cold_load_failure_probability=0.6)
        a, _ = self._thrash(policy)
        b, _ = self._thrash(policy)
        assert a.chaos.cold_load_failures == b.chaos.cold_load_failures
        assert a.stats.simulated_load_seconds == b.stats.simulated_load_seconds


# ----------------------------------------------------------------------
# The chaos fleet
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trained_pelican(tiny_corpus):
    """A trained, userless Pelican; tests deepcopy before mutating."""
    pelican = Pelican(
        tiny_corpus.spec(LEVEL),
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=16, epochs=2, patience=None),
            personalization=PersonalizationConfig(epochs=2, patience=None),
            privacy_temperature=1e-3,
            seed=3,
        ),
    )
    train, _ = tiny_corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    pelican.initial_training(train)
    splits = {
        uid: tiny_corpus.user_dataset(uid, LEVEL).split(0.8)
        for uid in tiny_corpus.personal_ids
    }
    return pelican, splits


def _schedule(corpus, splits, ticks=3):
    schedule = FleetSchedule()
    for i, uid in enumerate(corpus.personal_ids):
        schedule.onboard(float(i), uid, splits[uid][0], deployment=DeploymentMode.CLOUD)
    tick = 10.0
    for j in range(ticks):
        for uid in corpus.personal_ids:
            schedule.query(tick, uid, splits[uid][1].windows[j].history, k=3)
        tick += 10.0
    schedule.update(25.0, corpus.personal_ids[0], splits[corpus.personal_ids[0]][1])
    return schedule


class TestChaosFleet:
    def test_null_policy_identical_to_plain_fleet(self, trained_pelican, tiny_corpus):
        """chaos-on with zero-probability faults == chaos-off, bit for bit."""
        pelican, splits = trained_pelican
        plain = Fleet(copy.deepcopy(pelican), registry_capacity=1)
        chaotic = ChaosFleet(copy.deepcopy(pelican), ChaosPolicy(), registry_capacity=1)
        schedule = _schedule(tiny_corpus, splits)
        assert plain.run(schedule) == chaotic.run(schedule)
        assert plain.report.signature() == chaotic.report.signature()
        assert chaotic.chaos.signature() == ChaosStats().signature()

    def test_faulty_run_deterministic(self, trained_pelican, tiny_corpus):
        pelican, splits = trained_pelican
        schedule = _schedule(tiny_corpus, splits)

        def run():
            fleet = ChaosFleet(
                copy.deepcopy(pelican),
                chaos_policy("hostile", seed=2),
                registry_capacity=1,
            )
            return fleet, fleet.run(schedule)

        fleet_a, responses_a = run()
        fleet_b, responses_b = run()
        assert responses_a == responses_b  # bit-exact confidences
        assert fleet_a.signature() == fleet_b.signature()

    def test_faults_change_cost_not_rankings(self, trained_pelican, tiny_corpus):
        pelican, splits = trained_pelican
        schedule = _schedule(tiny_corpus, splits)
        clean = Fleet(copy.deepcopy(pelican), registry_capacity=1)
        clean_responses = {r.seq: r for r in clean.run(schedule)}
        lossy = ChaosFleet(
            copy.deepcopy(pelican),
            chaos_policy("lossy_network", seed=1),
            registry_capacity=1,
        )
        lossy_responses = {r.seq: r for r in lossy.run(schedule)}
        assert lossy.chaos.transfer_retries > 0
        assert set(lossy_responses) == set(clean_responses)
        for seq, response in clean_responses.items():
            assert lossy_responses[seq].top_k == response.top_k
        assert (
            lossy.report.signature()["network_seconds"]
            > clean.report.signature()["network_seconds"]
        )
        # Compute books are untouched by a transport-only policy.
        assert (
            lossy.report.signature()["cloud_macs"]
            == clean.report.signature()["cloud_macs"]
        )

    def test_churn_defers_but_serves_everything(self, trained_pelican, tiny_corpus):
        pelican, splits = trained_pelican
        schedule = _schedule(tiny_corpus, splits)
        num_queries = sum(
            1 for e in schedule.ordered() if e.kind.value == "query"
        )
        # Pick a seed that actually produces offline windows for these users.
        for seed in range(10):
            fleet = ChaosFleet(
                copy.deepcopy(pelican), chaos_policy("churn", seed=seed),
                registry_capacity=1,
            )
            responses = fleet.run(schedule)
            assert len(responses) == num_queries  # nothing dropped
            assert fleet.report.queries == num_queries
            if fleet.chaos.deferred_events:
                break
        else:
            pytest.fail("no churn seed in range(10) deferred any event")

    def test_perturb_preserves_per_user_order(self, trained_pelican, tiny_corpus):
        pelican, splits = trained_pelican
        schedule = _schedule(tiny_corpus, splits)
        for seed in range(10):
            fleet = ChaosFleet(
                copy.deepcopy(pelican),
                chaos_policy("hostile", seed=seed),
                registry_capacity=1,
            )
            perturbed = fleet.perturb(schedule)
            original_order = {}
            for position, event in enumerate(schedule.ordered()):
                original_order.setdefault(event.user_id, []).append(event.seq)
            perturbed_order = {}
            for event in perturbed.ordered():
                perturbed_order.setdefault(event.user_id, []).append(event.seq)
            assert perturbed_order == original_order

    def test_serve_looped_neutral_under_chaos(self, trained_pelican, tiny_corpus):
        """The parity reference must not perturb the chaos books either."""
        pelican, splits = trained_pelican
        fleet = ChaosFleet(
            copy.deepcopy(pelican),
            chaos_policy("lossy_network", seed=1),
            registry_capacity=1,
        )
        for i, uid in enumerate(tiny_corpus.personal_ids):
            fleet.onboard(uid, splits[uid][0], deployment=DeploymentMode.CLOUD)
        requests = [
            QueryRequest(uid, tuple(splits[uid][1].windows[0].history), 3)
            for uid in tiny_corpus.personal_ids
        ]
        batched = fleet.serve(requests)
        before = (fleet.signature(), fleet.pelican.channel.checkpoint())
        looped = fleet.serve_looped(requests)
        assert (fleet.signature(), fleet.pelican.channel.checkpoint()) == before
        # And parity still holds under packet loss: retries cost, answers don't.
        assert [r.top_k for r in batched] == [
            tuple((loc, pytest.approx(conf, rel=1e-9)) for loc, conf in r.top_k)
            for r in looped
        ]
