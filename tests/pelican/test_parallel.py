"""Parallel cluster serving tests (DESIGN.md §13).

Pins the contract of ``repro.pelican.parallel``:

* **bit-identical merge** — a ``workers=N`` run reproduces the serial
  run's responses and ``signature()`` (hence ``totals_signature()``)
  bit-for-bit at every worker count, under null chaos, shard-outage
  chaos (the failover hand-off path), and hostile chaos (the
  worker-RNG-inheritance invariant: shard chaos streams keep their
  ``shard_policy`` derived seeds — nothing reseeds from pid or time);
* **start-method independence** — fork and spawn workers answer
  identically (state travels by pickle either way);
* **scatter guard** — every shard must return one slot per request;
  a length mismatch is a hard error, not a silent misalignment;
* **targeted invalidation** — ``_invalidate_elsewhere`` books exactly
  the evictions a broadcast would, touching only shards whose live
  cache holds the model;
* **worker failures propagate** — an exception on a worker surfaces in
  the parent as a ``RuntimeError`` carrying the worker traceback.
"""

import copy

import pytest

from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.models import GeneralModelConfig, PersonalizationConfig
from repro.pelican import (
    ChaosPolicy,
    Cluster,
    DeploymentMode,
    FleetSchedule,
    Pelican,
    PelicanConfig,
    QueryRequest,
    ResiliencePolicy,
    chaos_policy,
    resilience_policy,
    totals_signature,
)

LEVEL = SpatialLevel.BUILDING


@pytest.fixture(scope="module")
def trained():
    """(corpus, trained userless pelican, per-user splits) — parallel
    tests deepcopy this instead of retraining."""
    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=12,
            num_contributors=3,
            num_personal_users=4,
            num_days=14,
            seed=5,
        )
    )
    pelican = Pelican(
        corpus.spec(LEVEL),
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=12, epochs=2, patience=None),
            personalization=PersonalizationConfig(
                epochs=2, patience=None, scratch_hidden_size=8
            ),
            privacy_temperature=1e-3,
            seed=5,
        ),
    )
    train, _ = corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    pelican.initial_training(train)
    splits = {
        uid: corpus.user_dataset(uid, LEVEL).split(0.8) for uid in corpus.personal_ids
    }
    return corpus, pelican, splits


def _schedule(corpus, splits, ticks=3):
    """Onboards (mixed deployment), coalesced query ticks, one update."""
    schedule = FleetSchedule()
    for i, uid in enumerate(corpus.personal_ids):
        mode = DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL
        schedule.onboard(float(i), uid, splits[uid][0], deployment=mode)
    tick = 10.0
    for j in range(ticks):
        for uid in corpus.personal_ids:
            holdout = splits[uid][1]
            window = holdout.windows[j % len(holdout.windows)]
            schedule.query(tick, uid, window.history, k=3)
        tick += 10.0
    first = corpus.personal_ids[0]
    schedule.update(tick, first, splits[first][1])
    for uid in corpus.personal_ids:
        schedule.query(tick + 10.0, uid, splits[uid][1].windows[0].history, k=2)
    return schedule


def _cluster(pelican, workers, policy=None, num_shards=4, **kwargs):
    return Cluster.from_trained(
        copy.deepcopy(pelican),
        num_shards=num_shards,
        registry_capacity=2,
        policy=policy,
        workers=workers,
        **kwargs,
    )


def _run(pelican, schedule, workers, policy=None, **kwargs):
    """(responses, signature, per-endpoint ledgers) of one replay."""
    cluster = _cluster(pelican, workers, policy=policy, **kwargs)
    try:
        responses = cluster.run(schedule)
        ledgers = {
            uid: (
                user.endpoint.stats.queries,
                user.endpoint.stats.simulated_network_seconds,
            )
            for uid, user in cluster.users.items()
        }
        return responses, cluster.signature(), ledgers
    finally:
        cluster.close()


class TestValidation:
    def test_negative_workers_rejected(self, trained):
        corpus, pelican, _ = trained
        with pytest.raises(ValueError, match="workers must be >= 0"):
            Cluster(corpus.spec(LEVEL), pelican.config, num_shards=2, workers=-1)

    def test_workers_reject_active_resilience(self, trained):
        """Breakers/ladder read cross-shard state mid-tick — no
        deterministic decomposition onto isolated workers (§13)."""
        corpus, pelican, _ = trained
        with pytest.raises(ValueError, match="does not compose"):
            Cluster(
                corpus.spec(LEVEL),
                pelican.config,
                num_shards=2,
                workers=2,
                resilience=resilience_policy("default", seed=0),
            )

    def test_workers_allow_null_resilience(self, trained):
        corpus, pelican, _ = trained
        cluster = Cluster(
            corpus.spec(LEVEL),
            pelican.config,
            num_shards=2,
            workers=2,
            resilience=ResiliencePolicy(),
        )
        cluster.close()


class TestBitParity:
    """The acceptance bar: parallel replay == serial replay, bit-for-bit."""

    def test_null_chaos_any_worker_count(self, trained):
        corpus, pelican, splits = trained
        schedule = _schedule(corpus, splits)
        serial = _run(pelican, schedule, workers=0, policy=ChaosPolicy())
        for workers in (1, 2, 4):
            assert _run(pelican, schedule, workers=workers, policy=ChaosPolicy()) == serial
        assert totals_signature(serial[1]) == totals_signature(serial[1])  # well-formed

    def test_shard_outage_failover_handoff(self, trained):
        """Outage ticks exercise the deterministic ownership hand-off:
        failover serving on the fallback worker, endpoint bills routed
        home, fresh blobs pushed on demand (§13)."""
        corpus, pelican, splits = trained
        schedule = _schedule(corpus, splits)
        policy = chaos_policy("shard_outage", seed=1)
        serial = _run(pelican, schedule, workers=0, policy=policy)
        for workers in (2, 4):
            assert _run(pelican, schedule, workers=workers, policy=policy) == serial

    def test_hostile_chaos_worker_rng_inheritance(self, trained):
        """The satellite invariant: a 2-worker hostile-chaos run is
        bit-identical to serial, which can only hold if every worker's
        chaos/RNG state is exactly the shipped ``shard_policy``-derived
        state — any pid/time reseeding would diverge the draw streams."""
        corpus, pelican, splits = trained
        schedule = _schedule(corpus, splits)
        policy = chaos_policy("hostile", seed=1)
        serial = _cluster(pelican, 0, policy=policy)
        parallel = _cluster(pelican, 2, policy=policy)
        try:
            assert parallel.run(schedule) == serial.run(schedule)
            assert parallel.signature() == serial.signature()
            # Chaos books travel back from the workers bit-exact too.
            assert parallel.merged_chaos() == serial.merged_chaos()
        finally:
            parallel.close()

    def test_stacked_dispatch_parity(self, trained):
        """Stacked serving is worker-local state — it parallelizes."""
        corpus, pelican, splits = trained
        schedule = _schedule(corpus, splits)
        serial = _run(pelican, schedule, workers=0, stacked=True)
        assert _run(pelican, schedule, workers=2, stacked=True) == serial

    def test_spawn_start_method_parity(self, trained, monkeypatch):
        """Fork and spawn workers are interchangeable: all shard state
        travels over the pipe by pickle, never by inheritance."""
        corpus, pelican, splits = trained
        schedule = _schedule(corpus, splits, ticks=1)
        serial = _run(pelican, schedule, workers=0)
        monkeypatch.setenv("REPRO_PARALLEL_START", "spawn")
        assert _run(pelican, schedule, workers=2) == serial

    def test_serve_scatter_parity(self, trained):
        """The one-shot ``Cluster.serve`` scatter path, not just ``run``."""
        corpus, pelican, splits = trained
        requests = [
            QueryRequest(
                user_id=uid, history=tuple(splits[uid][1].windows[0].history), k=3
            )
            for uid in corpus.personal_ids
        ]
        serial = _cluster(pelican, 0)
        parallel = _cluster(pelican, 2)
        try:
            for cluster in (serial, parallel):
                for i, uid in enumerate(corpus.personal_ids):
                    mode = DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL
                    cluster.onboard(uid, splits[uid][0], deployment=mode)
            assert parallel.serve(requests) == serial.serve(requests)
            assert parallel.signature() == serial.signature()
        finally:
            parallel.close()

    def test_sessions_compose_and_close_is_idempotent(self, trained):
        """State round-trips through consecutive sessions: run → run on
        one cluster matches the serial cluster doing the same."""
        corpus, pelican, splits = trained
        schedule = _schedule(corpus, splits, ticks=1)
        serial = _cluster(pelican, 0)
        parallel = _cluster(pelican, 2)
        try:
            for _ in range(2):
                assert parallel.run(schedule) == serial.run(schedule)
            assert parallel.signature() == serial.signature()
        finally:
            parallel.close()
            parallel.close()  # idempotent


class TestScatterGuard:
    """Satellite: a shard returning the wrong number of slots is a hard
    error at the merge — misalignment can never be silent."""

    def _onboarded(self, trained, workers=0):
        corpus, pelican, splits = trained
        cluster = _cluster(pelican, workers, num_shards=2)
        for uid in corpus.personal_ids:
            cluster.onboard(uid, splits[uid][0], deployment=DeploymentMode.CLOUD)
        requests = [
            QueryRequest(
                user_id=uid, history=tuple(splits[uid][1].windows[0].history), k=3
            )
            for uid in corpus.personal_ids
        ]
        return cluster, requests

    def test_short_shard_response_raises(self, trained):
        corpus, _, _ = trained
        cluster, requests = self._onboarded(trained)
        victim = cluster.shards[cluster.shard_of(corpus.personal_ids[0])]
        original = victim.serve
        victim.serve = lambda subset: original(subset)[:-1]
        with pytest.raises(RuntimeError, match="one slot per request"):
            cluster.serve(requests)

    def test_long_shard_response_raises(self, trained):
        corpus, _, _ = trained
        cluster, requests = self._onboarded(trained)
        victim = cluster.shards[cluster.shard_of(corpus.personal_ids[0])]
        original = victim.serve
        victim.serve = lambda subset: original(subset) * 2
        with pytest.raises(RuntimeError, match="one slot per request"):
            cluster.serve(requests)

    def test_intact_shards_pass_the_guard(self, trained):
        cluster, requests = self._onboarded(trained)
        assert len(cluster.serve(requests)) == len(requests)


class TestTargetedInvalidation:
    """Satellite: evict only shards whose live cache holds the model,
    with books identical to the broadcast reference."""

    def test_eviction_log_equals_broadcast_reference(self, trained):
        corpus, pelican, splits = trained
        uid = corpus.personal_ids[0]
        cluster = _cluster(pelican, 0, num_shards=3)
        cluster.onboard(uid, splits[uid][0], deployment=DeploymentMode.CLOUD)
        home = cluster.shard_of(uid)
        foreign = (home + 1) % 3
        untouched = (home + 2) % 3
        # A past failover cached the model on exactly one foreign shard.
        cluster.shards[foreign].registry.get(uid)
        assert uid in cluster.shards[foreign].registry.resident_ids

        # Reference: the same state, invalidated by brute-force broadcast.
        reference = copy.deepcopy(cluster)

        cluster.update(uid, splits[uid][1])

        ref_home = reference.shard_of(uid)
        reference.shards[ref_home].update(uid, splits[uid][1])
        for shard_id, shard in enumerate(reference.shards):
            if shard_id != ref_home:
                shard.registry.evict(uid)

        for ours, ref in zip(cluster.shards, reference.shards):
            assert ours.registry.stats.eviction_log == ref.registry.stats.eviction_log
            assert ours.registry.stats.evictions == ref.registry.stats.evictions
        assert cluster.signature() == reference.signature()
        # And the never-resident shard was genuinely left alone.
        assert cluster.shards[untouched].registry.stats.eviction_log == []
        assert uid not in cluster.shards[foreign].registry.resident_ids

    def test_parallel_invalidation_matches_serial(self, trained):
        """The worker-pool invalidation path (superset tracking + evict
        commands) books the same evictions the serial path does."""
        corpus, pelican, splits = trained
        schedule = _schedule(corpus, splits)
        policy = chaos_policy("shard_outage", seed=1)
        serial = _cluster(pelican, 0, policy=policy)
        parallel = _cluster(pelican, 2, policy=policy)
        try:
            serial.run(schedule)
            parallel.run(schedule)
            for ours, ref in zip(parallel.shards, serial.shards):
                assert (
                    ours.registry.stats.eviction_log
                    == ref.registry.stats.eviction_log
                )
        finally:
            parallel.close()


class TestWorkerFailures:
    def test_worker_exception_propagates_with_traceback(self, trained):
        corpus, pelican, splits = trained
        cluster = _cluster(pelican, 2, num_shards=2)
        uid = corpus.personal_ids[0]
        cluster.onboard(uid, splits[uid][0], deployment=DeploymentMode.CLOUD)
        ghost = max(corpus.personal_ids) + 999
        request = QueryRequest(
            user_id=ghost, history=tuple(splits[uid][1].windows[0].history), k=3
        )
        try:
            with pytest.raises(RuntimeError, match="shard worker failed"):
                cluster.serve([request])
        finally:
            cluster.close()
