"""Cluster serving-layer tests (DESIGN.md §9).

Pins the three guarantees the sharded layer advertises:

* **K-vs-1 parity** — a K-shard run under the null chaos policy returns
  bit-identical responses to the legacy single-``Fleet`` run on the same
  schedule and seed, and a 1-shard cluster's totals signature equals the
  legacy fleet signature field-by-field;
* **deterministic placement and routing** — the same seed, user set, and
  shard count reproduce the identical placement map and per-shard
  schedules, with per-user serial order preserved;
* **failover semantics** — shard-outage replay is bit-deterministic and
  ``signature()``-comparable, re-routed queries are answered from a
  durable-store cold load on the failover shard (cost-accounted there),
  and post-failover responses match a clean single-shard run.
"""

import copy

import numpy as np
import pytest

from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.models import GeneralModelConfig, PersonalizationConfig
from repro.pelican import (
    ChaosPolicy,
    Cluster,
    DeploymentMode,
    Fleet,
    FleetSchedule,
    HashPlacement,
    Pelican,
    PelicanConfig,
    QueryRequest,
    chaos_policy,
    split_schedule,
    totals_signature,
)

LEVEL = SpatialLevel.BUILDING


@pytest.fixture(scope="module")
def trained():
    """(corpus, trained userless pelican, per-user splits) — cluster tests
    deepcopy this instead of retraining."""
    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=12,
            num_contributors=3,
            num_personal_users=4,
            num_days=14,
            seed=5,
        )
    )
    pelican = Pelican(
        corpus.spec(LEVEL),
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=12, epochs=2, patience=None),
            personalization=PersonalizationConfig(
                epochs=2, patience=None, scratch_hidden_size=8
            ),
            privacy_temperature=1e-3,
            seed=5,
        ),
    )
    train, _ = corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    pelican.initial_training(train)
    splits = {
        uid: corpus.user_dataset(uid, LEVEL).split(0.8) for uid in corpus.personal_ids
    }
    return corpus, pelican, splits


def _schedule(corpus, splits, ticks=3, with_update=True):
    """Onboards (mixed deployment), coalesced query ticks, one update."""
    schedule = FleetSchedule()
    for i, uid in enumerate(corpus.personal_ids):
        mode = DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL
        schedule.onboard(float(i), uid, splits[uid][0], deployment=mode)
    tick = 10.0
    for j in range(ticks):
        for uid in corpus.personal_ids:
            holdout = splits[uid][1]
            window = holdout.windows[j % len(holdout.windows)]
            schedule.query(tick, uid, window.history, k=3)
        tick += 10.0
    if with_update:
        first = corpus.personal_ids[0]
        schedule.update(tick, first, splits[first][1])
        for uid in corpus.personal_ids:
            schedule.query(tick + 10.0, uid, splits[uid][1].windows[0].history, k=2)
    return schedule


def _fleet_run(pelican, corpus, splits, **schedule_kw):
    fleet = Fleet(copy.deepcopy(pelican), registry_capacity=2)
    responses = fleet.run(_schedule(corpus, splits, **schedule_kw))
    return fleet, responses


class TestSingleShardParity:
    """A 1-shard cluster IS the legacy fleet, bit for bit."""

    def test_responses_and_totals_match_legacy_fleet(self, trained):
        corpus, pelican, splits = trained
        fleet, expected = _fleet_run(pelican, corpus, splits)
        cluster = Cluster.from_trained(
            copy.deepcopy(pelican), num_shards=1, registry_capacity=2
        )
        assert cluster.run(_schedule(corpus, splits)) == expected
        assert totals_signature(cluster.report.signature()) == fleet.report.signature()

    def test_train_cloud_totals_match_legacy_fleet(self, trained):
        """Cluster-level training lands in the totals exactly like
        ``Fleet.train_cloud`` (same MACs, same float conversion)."""
        corpus, pelican, splits = trained
        train, _ = corpus.contributor_dataset(LEVEL).split_by_user(0.8)

        fleet = Fleet(
            Pelican(corpus.spec(LEVEL), pelican.config), registry_capacity=2
        )
        fleet.train_cloud(train)
        cluster = Cluster(
            corpus.spec(LEVEL), pelican.config, num_shards=1, registry_capacity=2
        )
        cluster.train_cloud(train)
        assert totals_signature(cluster.report.signature()) == fleet.report.signature()
        # The shard's own book excludes training; the cluster book holds it.
        assert cluster.report.shard(0).cloud_compute.macs == 0
        assert cluster.report.training.macs > 0


class TestMultiShardParity:
    def test_null_chaos_responses_bit_identical_to_single_fleet(self, trained):
        """The acceptance bar: K shards, null chaos, same answers."""
        corpus, pelican, splits = trained
        _, expected = _fleet_run(pelican, corpus, splits)
        for num_shards in (2, 3):
            cluster = Cluster.from_trained(
                copy.deepcopy(pelican),
                num_shards=num_shards,
                registry_capacity=2,
                policy=ChaosPolicy(),
            )
            assert cluster.run(_schedule(corpus, splits)) == expected

    def test_null_policy_identical_to_no_policy(self, trained):
        corpus, pelican, splits = trained
        plain = Cluster.from_trained(
            copy.deepcopy(pelican), num_shards=3, registry_capacity=2
        )
        null = Cluster.from_trained(
            copy.deepcopy(pelican),
            num_shards=3,
            registry_capacity=2,
            policy=ChaosPolicy(),
        )
        assert plain.run(_schedule(corpus, splits)) == null.run(
            _schedule(corpus, splits)
        )
        assert totals_signature(plain.report.signature()) == totals_signature(
            null.report.signature()
        )
        assert not any(null.merged_chaos().values())

    def test_signature_reproduces_and_shards_sum_to_totals(self, trained):
        corpus, pelican, splits = trained
        runs = []
        for _ in range(2):
            cluster = Cluster.from_trained(
                copy.deepcopy(pelican), num_shards=3, registry_capacity=2
            )
            cluster.run(_schedule(corpus, splits))
            runs.append(cluster)
        assert runs[0].report.signature() == runs[1].report.signature()
        cluster = runs[0]
        signature = cluster.report.signature()
        shards = signature["shards"]
        assert len(shards) == 3
        for field in ("queries", "batches", "onboards", "updates"):
            assert signature[field] == sum(s[field] for s in shards)
        assert signature["cloud_macs"] == sum(s["cloud_macs"] for s in shards)
        assert signature["eviction_log"] == tuple(
            uid for s in shards for uid in s["eviction_log"]
        )
        # Work genuinely spread: more than one shard served queries.
        assert sum(1 for s in shards if s["queries"]) > 1

    def test_serve_matches_serve_looped_across_shards(self, trained):
        from repro.eval import responses_match

        corpus, pelican, splits = trained
        cluster = Cluster.from_trained(
            copy.deepcopy(pelican), num_shards=3, registry_capacity=2
        )
        for uid in corpus.personal_ids:
            cluster.onboard(
                uid,
                splits[uid][0],
                deployment=DeploymentMode.CLOUD
                if uid % 2
                else DeploymentMode.LOCAL,
            )
        requests = [
            QueryRequest(user_id=uid, history=tuple(w.history), k=3)
            for uid in corpus.personal_ids
            for w in splits[uid][1].windows[:3]
        ]
        before = cluster.report.signature()
        looped = cluster.serve_looped(requests)
        assert cluster.report.signature() == before  # accounting-neutral
        batched = cluster.serve(requests)
        assert responses_match(batched, looped)

    @pytest.mark.parametrize("placement", ["least_loaded", "sticky"])
    def test_alternate_placements_answer_identically(self, trained, placement):
        corpus, pelican, splits = trained
        _, expected = _fleet_run(pelican, corpus, splits)
        cluster = Cluster.from_trained(
            copy.deepcopy(pelican),
            num_shards=2,
            placement=placement,
            registry_capacity=2,
        )
        assert cluster.run(_schedule(corpus, splits)) == expected


class TestRouting:
    def test_split_schedule_preserves_per_user_serial_order(self, trained):
        corpus, pelican, splits = trained
        schedule = _schedule(corpus, splits)
        placement = HashPlacement(seed=5, num_shards=3)
        per_shard = split_schedule(schedule, placement)
        # Union of events is the original schedule, nothing lost or duped.
        merged = sorted(
            (e for shard in per_shard.values() for e in shard.ordered()),
            key=lambda e: (e.time, e.seq),
        )
        assert merged == schedule.ordered()
        for shard_id, shard_schedule in per_shard.items():
            for event in shard_schedule.ordered():
                assert placement.shard_for(event.user_id) == shard_id
        # Per-user sequences replay in the original order on their shard.
        original = {}
        for event in schedule.ordered():
            original.setdefault(event.user_id, []).append(event.seq)
        for shard_schedule in per_shard.values():
            routed = {}
            for event in shard_schedule.ordered():
                routed.setdefault(event.user_id, []).append(event.seq)
            for uid, seqs in routed.items():
                assert seqs == original[uid]

    def test_lifecycle_events_route_to_home_shard(self, trained):
        corpus, pelican, splits = trained
        cluster = Cluster.from_trained(
            copy.deepcopy(pelican), num_shards=3, registry_capacity=2
        )
        uid = corpus.personal_ids[0]
        cluster.onboard(uid, splits[uid][0], deployment=DeploymentMode.CLOUD)
        home = cluster.shard_of(uid)
        assert uid in cluster.shards[home].pelican.users
        assert cluster.shards[home].report.onboards == 1
        before = cluster.shards[home].report.updates
        cluster.update(uid, splits[uid][1])
        assert cluster.shards[home].report.updates == before + 1
        assert cluster.placement_map() == {uid: home}


class TestAdoption:
    def test_from_trained_adopts_onboarded_users(self, trained):
        corpus, pelican, splits = trained
        source = copy.deepcopy(pelican)
        for i, uid in enumerate(corpus.personal_ids):
            mode = DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL
            source.onboard_user(uid, splits[uid][0], deployment=mode)
        cluster = Cluster.from_trained(source, num_shards=2, registry_capacity=2)
        assert cluster.num_users == len(corpus.personal_ids)
        for uid, user in cluster.users.items():
            shard = cluster.shards[cluster.shard_of(uid)]
            assert shard.pelican.users[uid] is user
            if user.endpoint.mode == DeploymentMode.CLOUD:
                # Rewired to the home shard's channel and registered there.
                assert user.endpoint.channel is shard.pelican.channel
                assert uid in shard.registry

    def test_from_trained_requires_training(self, trained):
        corpus, _, _ = trained
        with pytest.raises(RuntimeError, match="initial_training"):
            Cluster.from_trained(Pelican(corpus.spec(LEVEL)), num_shards=2)

    def test_shard_count_validation(self, trained):
        corpus, pelican, _ = trained
        with pytest.raises(ValueError, match="at least one shard"):
            Cluster(corpus.spec(LEVEL), pelican.config, num_shards=0)
        with pytest.raises(ValueError, match="placement policy covers"):
            Cluster(
                corpus.spec(LEVEL),
                pelican.config,
                num_shards=3,
                placement=HashPlacement(seed=5, num_shards=2),
            )


class TestFailover:
    POLICY_SEED = 1  # chosen so outages overlap query ticks (asserted below)

    def _outage_cluster(self, pelican):
        return Cluster.from_trained(
            copy.deepcopy(pelican),
            num_shards=3,
            registry_capacity=2,
            policy=chaos_policy("shard_outage", seed=self.POLICY_SEED),
        )

    def test_outage_replay_is_bit_deterministic(self, trained):
        corpus, pelican, splits = trained
        runs = []
        for _ in range(2):
            cluster = self._outage_cluster(pelican)
            responses = cluster.run(_schedule(corpus, splits))
            runs.append((responses, cluster.signature()))
        assert runs[0] == runs[1]
        assert runs[0][1]["chaos_failover_queries"] > 0

    def test_failover_answers_match_clean_single_shard_run(self, trained):
        """Faults move cost and timing, never answers: every re-routed
        query returns the clean run's ranking, with confidences equal to
        float round-off (a deferred reconnect burst re-batches, which
        moves the last ulp — DESIGN.md §7); responses served at their
        original tick are bit-identical."""
        corpus, pelican, splits = trained
        _, clean_responses = _fleet_run(pelican, corpus, splits, with_update=False)
        clean = {r.seq: r for r in clean_responses}
        cluster = self._outage_cluster(pelican)
        responses = cluster.run(_schedule(corpus, splits, with_update=False))
        assert cluster.chaos.failover_queries > 0
        assert len(responses) == len(clean)
        for response in responses:
            reference = clean[response.seq]
            assert [loc for loc, _ in response.top_k] == [
                loc for loc, _ in reference.top_k
            ]
            np.testing.assert_allclose(
                [conf for _, conf in response.top_k],
                [conf for _, conf in reference.top_k],
                rtol=1e-9,
                atol=0.0,
            )
            if response.time == reference.time:
                assert response == reference

    def test_failover_cold_load_charged_to_fallback_shard(self, trained):
        corpus, pelican, splits = trained
        cluster = self._outage_cluster(pelican)
        cluster.run(_schedule(corpus, splits, with_update=False))
        assert cluster.chaos.shard_outage_windows > 0
        assert cluster.chaos.failover_queries > 0
        # Someone other than the home shard paid a durable-store fetch:
        # failover cold loads appear in a fallback shard's registry book,
        # and the fallback channel carried the re-routed exchanges.
        labels = {
            record.label
            for shard in cluster.shards
            for record in shard.pelican.channel.records
        }
        assert "failover-query-context" in labels
        assert "failover-query-result" in labels
        assert cluster.report.registry.cold_loads > 0
        assert cluster.report.registry.simulated_load_seconds > 0

    def test_failover_preserves_per_endpoint_query_ledger(self, trained):
        """Every query is charged on its user's QueryStats exactly once,
        whether served at home or failed over — the §7 accounting
        boundary survives sharding and outages."""
        corpus, pelican, splits = trained
        cluster = self._outage_cluster(pelican)
        schedule = _schedule(corpus, splits, with_update=False)
        issued = {}
        for event in schedule.ordered():
            if event.kind.value == "query":
                issued[event.user_id] = issued.get(event.user_id, 0) + 1
        cluster.run(schedule)
        assert cluster.chaos.failover_queries > 0
        for uid, user in cluster.users.items():
            assert user.endpoint.stats.queries == issued[uid]

    def test_hash_failover_follows_ring_successors(self, trained):
        corpus, pelican, _ = trained
        cluster = self._outage_cluster(pelican)
        cluster._outages = {}  # all shards alive: no failover possible
        for uid in corpus.personal_ids:
            home = cluster.shard_of(uid)
            assert cluster._failover_target(uid, home, 0.0) != home or (
                cluster.num_shards == 1
            )
            # With every shard down there is no target: the caller
            # decides between the degradation ladder and the legacy
            # serve-on-downed-home path (DESIGN.md §11).
            cluster._outages = {
                s: [(0.0, 1.0)] for s in range(cluster.num_shards)
            }
            assert cluster._failover_target(uid, home, 0.5) is None
            cluster._outages = {}
            # The chosen target is the first non-home ring successor.
            expected = [
                s for s in cluster.placement.successors(uid) if s != home
            ][0]
            assert cluster._failover_target(uid, home, 0.0) == expected

    def test_update_invalidates_foreign_live_caches(self, trained):
        """A past failover caches the user's model on the fallback shard;
        a later update must evict that copy or the next failover would
        serve the stale pre-update model (found in review)."""
        corpus, pelican, splits = trained
        cluster = Cluster.from_trained(
            copy.deepcopy(pelican), num_shards=2, registry_capacity=2
        )
        uid = corpus.personal_ids[0]
        cluster.onboard(uid, splits[uid][0], deployment=DeploymentMode.CLOUD)
        home = cluster.shard_of(uid)
        fallback = cluster.shards[1 - home]
        # Outage 1: the fallback shard cold-loads and caches the model.
        fallback.registry.get(uid)
        assert uid in fallback.registry.resident_ids
        # The user updates; the fallback's live copy must be invalidated.
        cluster.update(uid, splits[uid][1])
        assert uid not in fallback.registry.resident_ids
        # Outage 2: the fallback cold-loads again and must answer exactly
        # like the home shard's post-update model.
        request = QueryRequest(
            user_id=uid, history=tuple(splits[uid][1].windows[0].history), k=3
        )
        [fresh] = cluster._serve_failover(cluster.shards[home], fallback, [request])
        [expected] = cluster.shards[home].serve([request])
        assert fresh.top_k == expected.top_k

    def test_lifecycle_events_defer_past_outages(self, trained):
        """Onboards/updates on a downed home shard wait out the window;
        their user's later events never overtake them."""
        corpus, pelican, splits = trained
        cluster = self._outage_cluster(pelican)
        schedule = _schedule(corpus, splits)
        perturbed = cluster._prepare(schedule)
        outages = cluster._outages
        assert outages  # the seed must actually produce windows
        for event in perturbed.ordered():
            if event.kind.value in ("onboard", "update"):
                home = cluster.shard_of(event.user_id)
                assert not cluster._down(home, event.time)
        # Per-user serial order survives the composition of deferrals.
        original, shuffled = {}, {}
        for event in schedule.ordered():
            original.setdefault(event.user_id, []).append(event.seq)
        for event in perturbed.ordered():
            shuffled.setdefault(event.user_id, []).append(event.seq)
        assert shuffled == original
