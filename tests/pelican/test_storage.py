"""Tiered blob storage: stores, compact codec, delta redeploys (DESIGN.md §14).

Three layers of guarantees:

* store semantics — every `BlobStore` is a byte-transparent mutable
  mapping with dict insertion-order behaviour and O(1) byte counters;
* codec — format-2 blobs round-trip state dicts exactly (dtypes
  included), embed the logical npz size, and delta blobs reconstitute
  the full compact blob byte-for-byte;
* integration — a registry (and a delta-updating Pelican deploy) behaves
  identically over any store tier, and `stored_bytes` stays equal to the
  recomputed sum through register/evict/overwrite churn.
"""

import copy

import numpy as np
import pytest

from repro.models import NextLocationModel
from repro.nn import init as nn_init
from repro.nn.serialization import (
    apply_state_delta,
    deserialize_state,
    encode_compact,
    is_compact,
    is_delta,
    logical_nbytes,
    serialize_state,
    serialize_state_compact,
    state_delta,
)
from repro.pelican import (
    STORE_KINDS,
    DiskBlobStore,
    MemoryBlobStore,
    ModelRegistry,
    TieredBlobStore,
    make_blob_store,
    rebuild_personal_model,
    serialize_personal_model,
)
from repro.pelican.deployment import (
    deploy_cloud,
    deploy_cloud_delta,
    serialize_personal_model_delta,
)
from repro.pelican.transport import Channel
from repro.data.features import FeatureSpec


def _model(seed=0, temperature=1e-3):
    model = NextLocationModel(
        input_width=10,
        num_locations=6,
        hidden_size=8,
        num_layers=1,
        dropout=0.0,
        rng=np.random.default_rng(seed),
    )
    model.set_privacy_temperature(temperature)
    model.eval()
    return model


def _stores(tmp_path):
    return [
        MemoryBlobStore(),
        DiskBlobStore(tmp_path / "disk"),
        TieredBlobStore(tmp_path / "tiered", hot_bytes=1 << 12),
    ]


# ----------------------------------------------------------------------
# Store semantics
# ----------------------------------------------------------------------
class TestStoreSemantics:
    def test_roundtrip_overwrite_delete(self, tmp_path):
        for store in _stores(tmp_path):
            store[1] = b"alpha"
            store[2] = b"beta" * 100
            assert store[1] == b"alpha" and store[2] == b"beta" * 100
            assert len(store) == 2 and 1 in store and 3 not in store
            assert store.total_bytes == 5 + 400
            store[1] = b"gamma!"  # overwrite
            assert store[1] == b"gamma!"
            assert store.total_bytes == 6 + 400
            del store[2]
            assert 2 not in store and len(store) == 1
            assert store.total_bytes == 6
            assert store.get(2) is None
            store.close()

    def test_insertion_order_survives_overwrite(self, tmp_path):
        """Dict semantics: iteration order is first-insertion order."""
        for store in _stores(tmp_path):
            for uid in (5, 3, 9):
                store[uid] = bytes([uid])
            store[3] = b"replaced"
            assert list(store) == [5, 3, 9]
            assert [k for k, _ in store.items()] == [5, 3, 9]
            store.close()

    def test_update_routes_through_setitem(self, tmp_path):
        for store in _stores(tmp_path):
            store.update({1: b"a", 2: b"bb"})
            assert store.total_bytes == 3
            assert dict(store.items()) == {1: b"a", 2: b"bb"}
            store.close()

    def test_make_blob_store(self, tmp_path):
        assert isinstance(make_blob_store("memory"), MemoryBlobStore)
        disk = make_blob_store("disk", tmp_path / "d")
        assert isinstance(disk, DiskBlobStore)
        tiered = make_blob_store("tiered", tmp_path / "t")
        assert isinstance(tiered, TieredBlobStore)
        with pytest.raises(ValueError, match="unknown blob store"):
            make_blob_store("punched-cards")
        assert set(STORE_KINDS) == {"memory", "disk", "tiered"}
        disk.close()
        tiered.close()


class TestDiskBlobStore:
    def test_segment_rolling(self, tmp_path):
        store = DiskBlobStore(tmp_path / "seg", segment_bytes=256)
        blobs = {uid: bytes([uid % 251]) * 100 for uid in range(10)}
        for uid, blob in blobs.items():
            store[uid] = blob
        segments = list((tmp_path / "seg").glob("segment-*.blob"))
        assert len(segments) > 1  # rolled at least once
        for uid, blob in blobs.items():
            assert store[uid] == blob
        store.close()

    def test_view_is_zero_copy_and_reads_back(self, tmp_path):
        store = DiskBlobStore(tmp_path / "v")
        payload = np.arange(64, dtype=np.float32).tobytes()
        store[7] = payload
        view = store.view(7)
        assert isinstance(view, memoryview)
        assert bytes(view) == payload
        # A read after a later append still sees the right bytes.
        store[8] = b"x" * 999
        assert store[7] == payload
        store.close()

    def test_resident_is_o_index_not_o_blobs(self, tmp_path):
        store = DiskBlobStore(tmp_path / "r")
        for uid in range(50):
            store[uid] = b"z" * 4096
        assert store.total_bytes == 50 * 4096
        assert store.resident_bytes() < store.total_bytes / 10
        store.close()

    def test_owned_tmpdir_removed_on_close(self):
        store = DiskBlobStore()
        store[1] = b"ephemeral"
        directory = store._dir
        assert directory.exists()
        store.close()
        assert not directory.exists()

    def test_deepcopy_is_read_replica(self, tmp_path):
        store = DiskBlobStore(tmp_path / "dc")
        store[1] = b"original"
        clone = copy.deepcopy(store)
        assert clone[1] == b"original"
        clone.close()  # must not delete the shared files
        assert store[1] == b"original"
        store.close()


class TestTieredBlobStore:
    def test_write_through_and_promotion(self, tmp_path):
        store = TieredBlobStore(tmp_path / "t", hot_bytes=300)
        store[1] = b"a" * 100
        store[2] = b"b" * 100
        store[3] = b"c" * 100
        assert store.hot_hits == 0
        assert store[1] == b"a" * 100  # hot hit: all three fit exactly
        assert store.hot_hits == 1
        store[4] = b"d" * 100  # overflows: LRU (2) demotes
        assert store[2] == b"b" * 100  # miss, served from disk
        assert store.hot_misses == 1
        store.close()

    def test_demotion_is_deterministic(self, tmp_path):
        def churn(directory):
            store = TieredBlobStore(directory, hot_bytes=256)
            rng = np.random.default_rng(0)
            for step in range(200):
                uid = int(rng.integers(0, 20))
                if rng.random() < 0.4:
                    store[uid] = bytes([step % 251]) * int(rng.integers(16, 128))
                elif uid in store:
                    store[uid]
            trace = (store.hot_hits, store.hot_misses, sorted(store._hot))
            store.close()
            return trace

        assert churn(tmp_path / "a") == churn(tmp_path / "b")

    def test_hot_cache_bounded(self, tmp_path):
        store = TieredBlobStore(tmp_path / "b", hot_bytes=1000)
        for uid in range(100):
            store[uid] = b"q" * 400
        assert store._hot_total <= 1000
        assert store.resident_bytes() < store.total_bytes
        assert len(store) == 100
        store.close()


# ----------------------------------------------------------------------
# Compact codec + deltas
# ----------------------------------------------------------------------
class TestCompactCodec:
    def test_roundtrip_preserves_dtypes(self):
        state = {
            "w64": np.linspace(0, 1, 12).reshape(3, 4),
            "w32": np.arange(6, dtype=np.float32).reshape(2, 3),
            "w16": np.ones(5, dtype=np.float16) * 0.5,
        }
        meta = {"hidden": 8, "temperature": 1e-3}
        compact = serialize_state_compact(state, meta)
        assert is_compact(compact)
        out, meta_out = deserialize_state(compact)
        assert meta_out == meta
        for name, value in state.items():
            np.testing.assert_array_equal(out[name], value)
            assert out[name].dtype == value.dtype

    def test_encode_embeds_logical_size(self):
        state = {"w": np.zeros((32, 32))}
        npz = serialize_state(state, {"k": 1})
        compact = encode_compact(npz)
        assert logical_nbytes(compact) == len(npz)
        assert logical_nbytes(npz) == len(npz)
        assert encode_compact(compact) is compact  # idempotent
        # Compact drops the zip framing: physically smaller here.
        assert len(compact) < len(npz)

    def test_model_blob_roundtrips_via_both_formats(self):
        model = _model(3)
        npz = serialize_personal_model(model)
        compact = encode_compact(npz)
        batch = np.random.default_rng(1).normal(size=(2, 2, 10))
        expected = model.infer_logits(batch)
        for blob in (npz, compact):
            rebuilt = rebuild_personal_model(blob, np.random.default_rng(99))
            np.testing.assert_array_equal(rebuilt.infer_logits(batch), expected)

    def test_delta_reconstitutes_byte_identical(self):
        model = _model(5)
        prior = encode_compact(serialize_personal_model(model))
        # Nudge one tensor: the delta must carry less than the full blob
        # and apply back to the exact new serialization.
        model.head.weight.data = model.head.weight.data + 0.25
        delta, full = serialize_personal_model_delta(model, prior)
        assert is_delta(delta)
        assert len(delta) < len(full)
        assert apply_state_delta(prior, delta) == full
        assert full == encode_compact(serialize_personal_model(model))

    def test_identical_redeploy_ships_no_tensors(self):
        model = _model(6)
        prior = encode_compact(serialize_personal_model(model))
        delta, full = serialize_personal_model_delta(model, prior)
        assert full == prior
        assert apply_state_delta(prior, delta) == prior
        assert len(delta) < len(prior) / 4


class TestZeroInit:
    def test_skip_init_consumes_no_draws(self):
        rng = np.random.default_rng(0)
        with nn_init.skip_init():
            zeroed = nn_init.xavier_uniform(rng, (4, 4))
            lstm = nn_init.uniform_lstm(rng, (8, 2), hidden_size=2)
        assert not zeroed.any() and not lstm.any()
        # No draws were consumed inside the block.
        fresh = np.random.default_rng(0)
        np.testing.assert_array_equal(rng.uniform(size=3), fresh.uniform(size=3))
        # And the flag is restored.
        assert nn_init.xavier_uniform(rng, (4, 4)).any()


# ----------------------------------------------------------------------
# Registry / deploy integration
# ----------------------------------------------------------------------
class TestRegistryOverStores:
    def test_identical_behaviour_across_tiers(self, tmp_path):
        batch = np.random.default_rng(2).normal(size=(2, 2, 10))
        results = []
        for store in _stores(tmp_path):
            registry = ModelRegistry(capacity=1, seed=0, store=store)
            for uid in (1, 2, 3):
                registry.register(uid, _model(uid))
            outs = [registry.get(uid).infer_logits(batch) for uid in (1, 3, 2, 1)]
            results.append(
                (
                    [o.tobytes() for o in outs],
                    registry.stats.cold_loads,
                    registry.stats.eviction_log,
                    registry.stats.simulated_load_seconds,
                    registry.stored_bytes,
                )
            )
            store.close()
        assert results[0] == results[1] == results[2]

    def test_stored_bytes_counter_matches_recomputed_sum(self, tmp_path):
        for store in _stores(tmp_path):
            registry = ModelRegistry(capacity=2, seed=0, store=store)
            for step, uid in enumerate((1, 2, 3, 1, 2, 4, 1)):
                registry.register(uid, _model(uid + step))
                assert registry.stored_bytes == sum(
                    len(blob) for blob in store.values()
                )
            del store[3]
            assert registry.stored_bytes == sum(len(b) for b in store.values())
            store.close()

    def test_fetch_billed_at_logical_bytes(self, tmp_path):
        """The compact transcode must not move simulated load seconds."""
        store = DiskBlobStore(tmp_path / "bill")
        registry = ModelRegistry(capacity=1, seed=0, store=store)
        model = _model(1)
        logical = registry.register(1, model)
        assert logical == len(serialize_personal_model(model))
        registry.register(2, _model(2))
        registry.get(1)  # cold load off disk
        expected = logical * 8 / (registry.storage_mbps * 1e6)
        np.testing.assert_allclose(registry.stats.simulated_load_seconds, expected)
        # Physically the stored blob is compact, not npz.
        assert is_compact(store[1]) and len(store[1]) != logical
        store.close()


class TestDeltaDeploy:
    def test_redeploy_ships_fewer_bytes_same_answers(self):
        spec = FeatureSpec(num_locations=6)
        batch = np.random.default_rng(3).normal(size=(2, 2, 10))

        full_channel = Channel()
        model = _model(1)
        deploy_cloud(model, spec, full_channel, np.random.default_rng(7))
        full_bytes = full_channel.bytes_up

        delta_channel = Channel()
        endpoint_first, _, stored = deploy_cloud_delta(
            _model(1), spec, delta_channel, np.random.default_rng(7), None
        )
        assert delta_channel.bytes_up == full_bytes  # first deploy: full blob
        updated = _model(1)
        updated.head.weight.data = updated.head.weight.data + 0.125
        endpoint_second, _, stored2 = deploy_cloud_delta(
            updated, spec, delta_channel, np.random.default_rng(8), stored
        )
        delta_bytes = delta_channel.bytes_up - full_bytes
        assert 0 < delta_bytes < full_bytes
        np.testing.assert_array_equal(
            endpoint_second.predictor.model.infer_logits(batch),
            updated.infer_logits(batch),
        )
        assert stored2 == encode_compact(serialize_personal_model(updated))
