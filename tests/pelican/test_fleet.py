"""Fleet serving layer tests (DESIGN.md §7).

Covers the two guarantees the layer advertises:

* **parity** — batched multi-user serving returns exactly what the
  per-query loop returns, including after registry cold loads;
* **determinism** — the same seed and the same event schedule reproduce
  identical responses, identical per-side accounting signatures, and the
  identical registry eviction sequence.
"""

import numpy as np
import pytest

from repro.data import SpatialLevel
from repro.models import GeneralModelConfig, PersonalizationConfig
from repro.pelican import (
    DeploymentMode,
    Fleet,
    FleetSchedule,
    Pelican,
    PelicanConfig,
    QueryRequest,
)

LEVEL = SpatialLevel.BUILDING


def _build_fleet(corpus, capacity=2, seed=3):
    """A freshly trained fleet over the shared tiny corpus."""
    pelican = Pelican(
        corpus.spec(LEVEL),
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=16, epochs=2, patience=None),
            personalization=PersonalizationConfig(epochs=2, patience=None),
            privacy_temperature=1e-3,
            seed=seed,
        ),
    )
    fleet = Fleet(pelican, registry_capacity=capacity)
    train, _ = corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    fleet.train_cloud(train)
    return fleet


def _user_splits(corpus):
    return {
        uid: corpus.user_dataset(uid, LEVEL).split(0.8) for uid in corpus.personal_ids
    }


def _schedule(corpus, splits):
    """Interleaved onboard/query/update workload; all users cloud-deployed
    so the capacity-1 registry in the determinism test must thrash."""
    schedule = FleetSchedule()
    for i, uid in enumerate(corpus.personal_ids):
        train, _ = splits[uid]
        schedule.onboard(float(i), uid, train, deployment=DeploymentMode.CLOUD)
    tick = 10.0
    for uid in corpus.personal_ids:
        _, holdout = splits[uid]
        for window in holdout.windows[:3]:
            schedule.query(tick, uid, window.history, k=3)
    first = corpus.personal_ids[0]
    schedule.update(20.0, first, splits[first][1])
    for uid in corpus.personal_ids:
        _, holdout = splits[uid]
        schedule.query(30.0, uid, holdout.windows[0].history, k=2)
    return schedule


@pytest.fixture(scope="module")
def served_fleet(tiny_corpus):
    """One fleet with onboarded users, shared by the read-only tests."""
    fleet = _build_fleet(tiny_corpus, capacity=2)
    splits = _user_splits(tiny_corpus)
    for i, uid in enumerate(tiny_corpus.personal_ids):
        train, _ = splits[uid]
        mode = DeploymentMode.CLOUD if i % 2 == 0 else DeploymentMode.LOCAL
        fleet.onboard(uid, train, deployment=mode)
    return fleet, splits


def _requests(corpus, splits, per_user=4, k=3):
    requests = []
    for j in range(per_user):
        for uid in corpus.personal_ids:
            _, holdout = splits[uid]
            window = holdout.windows[j % len(holdout.windows)]
            requests.append(QueryRequest(user_id=uid, history=tuple(window.history), k=k))
    return requests


def _assert_same_responses(batched, looped, exact=False):
    assert len(batched) == len(looped)
    for a, b in zip(batched, looped):
        assert a.user_id == b.user_id
        assert [loc for loc, _ in a.top_k] == [loc for loc, _ in b.top_k]
        if exact:
            assert [c for _, c in a.top_k] == [c for _, c in b.top_k]
        else:
            np.testing.assert_allclose(
                [c for _, c in a.top_k], [c for _, c in b.top_k], rtol=1e-9
            )


class TestBatchedParity:
    def test_serve_matches_serve_looped(self, served_fleet, tiny_corpus):
        fleet, splits = served_fleet
        requests = _requests(tiny_corpus, splits)
        _assert_same_responses(fleet.serve(requests), fleet.serve_looped(requests))

    def test_serve_matches_after_cold_load(self, tiny_corpus):
        """A registry cold load rebuilds the model bit-identically."""
        fleet = _build_fleet(tiny_corpus, capacity=1)
        splits = _user_splits(tiny_corpus)
        for uid in tiny_corpus.personal_ids:
            fleet.onboard(uid, splits[uid][0], deployment=DeploymentMode.CLOUD)
        # Capacity 1 with 2 cloud users: serving both thrashes the cache.
        requests = _requests(tiny_corpus, splits, per_user=2)
        batched = fleet.serve(requests)
        assert fleet.report.registry.cold_loads > 0
        assert fleet.report.registry.evictions > 0
        _assert_same_responses(batched, fleet.serve_looped(requests))

    def test_serve_groups_per_model(self, served_fleet, tiny_corpus):
        fleet, splits = served_fleet
        before_batches = fleet.report.batches
        before_queries = fleet.report.queries
        requests = _requests(tiny_corpus, splits, per_user=5)
        fleet.serve(requests)
        # One dispatch per (user, window length, k) group, not per query.
        assert fleet.report.batches == before_batches + len(tiny_corpus.personal_ids)
        assert fleet.report.queries == before_queries + len(requests)

    def test_query_batch_matches_single_queries(self, served_fleet, tiny_corpus):
        fleet, splits = served_fleet
        uid = tiny_corpus.personal_ids[0]
        _, holdout = splits[uid]
        histories = [w.history for w in holdout.windows[:4]]
        batched = fleet.pelican.query_batch(uid, histories, k=3)
        for row, history in zip(batched, histories):
            single = fleet.pelican.query(uid, history, k=3)
            assert [loc for loc, _ in row] == [loc for loc, _ in single]
            np.testing.assert_allclose(
                [c for _, c in row], [c for _, c in single], rtol=1e-9
            )

    def test_bulk_network_accounting_matches_seed_path(self, served_fleet, tiny_corpus):
        """Batched cloud serving pays the same per-device traffic as
        querying the endpoint one request at a time."""
        fleet, splits = served_fleet
        channel = fleet.pelican.channel
        cloud_uid = next(
            uid for uid, u in fleet.pelican.users.items()
            if u.endpoint.mode == DeploymentMode.CLOUD
        )
        _, holdout = splits[cloud_uid]
        n = 3
        requests = [
            QueryRequest(cloud_uid, tuple(holdout.windows[i % len(holdout.windows)].history), 3)
            for i in range(n)
        ]
        up0, down0, count0 = channel.bytes_up, channel.bytes_down, channel.transfer_count
        fleet.serve(requests)
        up_batched = channel.bytes_up - up0
        down_batched = channel.bytes_down - down0
        assert channel.transfer_count - count0 == 2 * n  # n uploads + n downloads
        up1, down1, count1 = channel.bytes_up, channel.bytes_down, channel.transfer_count
        for request in requests:  # the seed path, one exchange per query
            fleet.pelican.query(request.user_id, request.history, request.k)
        assert channel.bytes_up - up1 == up_batched
        assert channel.bytes_down - down1 == down_batched
        assert channel.transfer_count - count1 == 2 * n

    def test_serve_looped_is_accounting_neutral(self, served_fleet, tiny_corpus):
        """The parity reference must not perturb the books (DESIGN.md §7)."""
        fleet, splits = served_fleet
        channel = fleet.pelican.channel
        requests = _requests(tiny_corpus, splits, per_user=2)
        before = (
            channel.checkpoint(),
            fleet.report.signature(),
            {uid: (u.endpoint.stats.queries, u.endpoint.stats.simulated_network_seconds)
             for uid, u in fleet.pelican.users.items()},
        )
        fleet.serve_looped(requests)
        after = (
            channel.checkpoint(),
            fleet.report.signature(),
            {uid: (u.endpoint.stats.queries, u.endpoint.stats.simulated_network_seconds)
             for uid, u in fleet.pelican.users.items()},
        )
        assert before == after


class TestAdoption:
    def test_serves_cloud_users_onboarded_before_fleet_wrap(self, tiny_corpus):
        """Wrapping an already-populated Pelican seeds the registry."""
        pelican = Pelican(
            tiny_corpus.spec(LEVEL),
            PelicanConfig(
                general=GeneralModelConfig(hidden_size=16, epochs=2, patience=None),
                personalization=PersonalizationConfig(epochs=2, patience=None),
                seed=3,
            ),
        )
        train, _ = tiny_corpus.contributor_dataset(LEVEL).split_by_user(0.8)
        pelican.initial_training(train)
        splits = _user_splits(tiny_corpus)
        uid = tiny_corpus.personal_ids[0]
        pelican.onboard_user(uid, splits[uid][0], deployment=DeploymentMode.CLOUD)
        fleet = Fleet(pelican, registry_capacity=2)
        assert uid in fleet.registry
        requests = [QueryRequest(uid, tuple(splits[uid][1].windows[0].history), 3)]
        _assert_same_responses(fleet.serve(requests), fleet.serve_looped(requests))


class TestScheduleInvariants:
    def test_duplicate_seq_rejected(self, tiny_corpus):
        """Same-time ties resolve by seq alone, so a duplicate seq would
        make replay order silently implementation-defined."""
        from repro.pelican import EventKind, FleetEvent

        schedule = FleetSchedule()
        uid = tiny_corpus.personal_ids[0]
        schedule.query(1.0, uid, (), k=3)  # takes seq 0
        clone = FleetEvent(
            time=2.0, seq=0, kind=EventKind.QUERY, user_id=uid, payload=()
        )
        with pytest.raises(ValueError, match="duplicate event seq"):
            schedule.add(clone)
        schedule.add(
            FleetEvent(time=2.0, seq=7, kind=EventKind.QUERY, user_id=uid, payload=())
        )
        assert len(schedule) == 2

    def test_builder_calls_interleave_with_add(self, tiny_corpus):
        """The fluent builders skip past explicitly-inserted seqs instead
        of colliding with them."""
        from repro.pelican import EventKind, FleetEvent

        schedule = FleetSchedule()
        uid = tiny_corpus.personal_ids[0]
        schedule.add(
            FleetEvent(time=1.0, seq=3, kind=EventKind.QUERY, user_id=uid, payload=())
        )
        schedule.query(2.0, uid, (), k=3)
        schedule.query(3.0, uid, (), k=3)
        seqs = [e.seq for e in schedule.ordered()]
        assert seqs == [3, 4, 5]

    def test_same_tick_onboard_then_query_ordering_enforced(self, tiny_corpus):
        """At one tick, insertion order is execution order: onboard added
        before query serves it; the reverse order fails fast."""
        splits = _user_splits(tiny_corpus)
        uid = tiny_corpus.personal_ids[0]
        window = splits[uid][1].windows[0]

        fleet = _build_fleet(tiny_corpus, capacity=2)
        good = FleetSchedule()
        good.onboard(3.0, uid, splits[uid][0], deployment=DeploymentMode.LOCAL)
        good.query(3.0, uid, window.history)
        responses = fleet.run(good)
        assert len(responses) == 1 and responses[0].user_id == uid

        fleet = _build_fleet(tiny_corpus, capacity=2)
        bad = FleetSchedule()
        bad.query(3.0, uid, window.history)  # same tick, but earlier seq
        bad.onboard(3.0, uid, splits[uid][0], deployment=DeploymentMode.LOCAL)
        with pytest.raises(KeyError):
            fleet.run(bad)


class TestEventClock:
    def test_same_tick_queries_form_one_batch_per_model(self, tiny_corpus):
        fleet = _build_fleet(tiny_corpus, capacity=2)
        splits = _user_splits(tiny_corpus)
        schedule = FleetSchedule()
        for i, uid in enumerate(tiny_corpus.personal_ids):
            schedule.onboard(float(i), uid, splits[uid][0], deployment=DeploymentMode.CLOUD)
        # 3 queries per user, all at one tick -> one batch per user.
        for uid in tiny_corpus.personal_ids:
            for window in splits[uid][1].windows[:3]:
                schedule.query(5.0, uid, window.history)
        # A later tick flushes separately -> one more batch.
        uid0 = tiny_corpus.personal_ids[0]
        schedule.query(6.0, uid0, splits[uid0][1].windows[0].history)
        responses = fleet.run(schedule)
        assert len(responses) == 3 * len(tiny_corpus.personal_ids) + 1
        assert fleet.report.batches == len(tiny_corpus.personal_ids) + 1

    def test_non_query_event_splits_same_tick_batch(self, tiny_corpus):
        fleet = _build_fleet(tiny_corpus, capacity=2)
        splits = _user_splits(tiny_corpus)
        uid = tiny_corpus.personal_ids[0]
        schedule = FleetSchedule()
        schedule.onboard(0.0, uid, splits[uid][0], deployment=DeploymentMode.LOCAL)
        window = splits[uid][1].windows[0]
        schedule.query(1.0, uid, window.history)
        schedule.update(1.0, uid, splits[uid][1])  # same tick, later seq
        schedule.query(1.0, uid, window.history)
        responses = fleet.run(schedule)
        assert len(responses) == 2
        assert fleet.report.batches == 2  # the update split the tick
        assert fleet.report.updates == 1

    def test_responses_tagged_with_event_time_and_seq(self, tiny_corpus):
        fleet = _build_fleet(tiny_corpus, capacity=2)
        splits = _user_splits(tiny_corpus)
        uid = tiny_corpus.personal_ids[0]
        schedule = FleetSchedule()
        schedule.onboard(0.0, uid, splits[uid][0], deployment=DeploymentMode.LOCAL)
        window = splits[uid][1].windows[0]
        schedule.query(2.5, uid, window.history)
        responses = fleet.run(schedule)
        assert responses[0].time == 2.5
        assert responses[0].seq == 1  # second event added to the schedule

    def test_query_before_onboard_fails(self, tiny_corpus):
        fleet = _build_fleet(tiny_corpus)
        splits = _user_splits(tiny_corpus)
        uid = tiny_corpus.personal_ids[0]
        schedule = FleetSchedule()
        schedule.query(0.0, uid, splits[uid][1].windows[0].history)
        with pytest.raises(KeyError):
            fleet.run(schedule)


class TestDeterminism:
    def test_same_seed_same_schedule_identical_run(self, tiny_corpus):
        """Same seed + same events ⇒ identical responses, accounting
        signature, and registry eviction sequence (DESIGN.md §7)."""
        splits = _user_splits(tiny_corpus)

        def one_run():
            fleet = _build_fleet(tiny_corpus, capacity=1, seed=3)
            responses = fleet.run(_schedule(tiny_corpus, splits))
            return fleet, responses

        fleet_a, responses_a = one_run()
        fleet_b, responses_b = one_run()
        assert len(responses_a) == len(responses_b)
        for a, b in zip(responses_a, responses_b):
            assert (a.user_id, a.time, a.seq) == (b.user_id, b.time, b.seq)
            assert a.top_k == b.top_k  # bit-exact confidences
        assert fleet_a.report.signature() == fleet_b.report.signature()
        # The thrashing capacity-1 registry evicted, identically.
        assert fleet_a.report.registry.eviction_log
        assert (
            fleet_a.report.registry.eviction_log
            == fleet_b.report.registry.eviction_log
        )

    def test_different_seed_changes_models_not_structure(self, tiny_corpus):
        splits = _user_splits(tiny_corpus)
        fleet_a = _build_fleet(tiny_corpus, capacity=1, seed=3)
        fleet_b = _build_fleet(tiny_corpus, capacity=1, seed=4)
        responses_a = fleet_a.run(_schedule(tiny_corpus, splits))
        responses_b = fleet_b.run(_schedule(tiny_corpus, splits))
        sig_a, sig_b = fleet_a.report.signature(), fleet_b.report.signature()
        # Workload structure is seed independent...
        for key in ("queries", "batches", "onboards", "updates"):
            assert sig_a[key] == sig_b[key]
        # ...but the trained models are not.
        assert any(a.top_k != b.top_k for a, b in zip(responses_a, responses_b))
