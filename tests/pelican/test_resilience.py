"""Resilience-layer tests (DESIGN.md §11).

The layer's contract, mirrored from the chaos layer's (§8) and covered
here mechanism by mechanism:

* retry budgets cap chaos retries and surface exhaustion as typed,
  counted denials — with an ample budget the RNG draw sequence is
  untouched;
* circuit breakers walk closed → open → half-open deterministically on
  the event clock, and their transition log is bit-identical across
  same-seed runs;
* deadlines shed late queries up front (probes exempt), and
  availability/SLO scoring penalizes unprotected full-outage answers;
* the degradation ladder answers full outages (the PR-4
  serve-on-downed-home hole) with flagged, billed, deterministic
  degraded responses;
* the null policy is byte-identical to running without the layer —
  responses, signatures, and signature *key sets* (the golden contract).
"""

import copy
from dataclasses import replace

import numpy as np
import pytest

from repro.data import SpatialLevel
from repro.models import GeneralModelConfig, PersonalizationConfig
from repro.pelican import (
    CHAOS_POLICIES,
    ChaosFleet,
    Cluster,
    DeploymentMode,
    FleetSchedule,
    Pelican,
    PelicanConfig,
    QueryRequest,
    RESILIENCE_POLICIES,
    ResiliencePolicy,
    ResilienceStats,
    ShardBreaker,
    chaos_policy,
    measure_availability,
    resilience_policy,
    shed_late_queries,
)
from repro.pelican.dispatch import ProbePayload

LEVEL = SpatialLevel.BUILDING


# ----------------------------------------------------------------------
# Policy plumbing
# ----------------------------------------------------------------------
class TestPolicy:
    def test_null_detection(self):
        assert ResiliencePolicy().is_null
        assert RESILIENCE_POLICIES["none"].is_null
        for name in ("default", "strict"):
            assert not RESILIENCE_POLICIES[name].is_null

    def test_presets_reseeded_and_redeadlined(self):
        policy = resilience_policy("default", seed=42, deadline=3.0)
        assert policy.seed == 42
        assert policy.deadline == 3.0
        assert policy.retry_budget == RESILIENCE_POLICIES["default"].retry_budget
        with pytest.raises(KeyError, match="unknown resilience policy"):
            resilience_policy("wishful_thinking")

    def test_unknown_degrade_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown degradation tier"):
            ResiliencePolicy(degrade_tiers=("psychic",))

    def test_capped_attempts_budget_binds_and_denies(self):
        policy = ResiliencePolicy(retry_budget=2)
        stats = ResilienceStats()
        rng = np.random.default_rng(0)
        # probability 1.0: the chaos loop would retry to its cap (5);
        # the budget cuts it at 2 and the denial probe fires.
        attempts = policy.capped_attempts(rng, 1.0, 5, "transfer", (7,), stats)
        assert attempts == 2
        assert stats.retries_spent == 2
        assert stats.retries_denied == 1
        assert stats.denial_log == [("transfer", 7)]

    def test_capped_attempts_ample_budget_preserves_draws(self):
        """With budget >= the chaos cap the RNG consumption is identical
        to the unbudgeted loop — the draw-parity half of null-identity."""
        policy = ResiliencePolicy(retry_budget=9)
        probability, cap = 0.6, 4
        budgeted = np.random.default_rng(3)
        attempts = policy.capped_attempts(budgeted, probability, cap, "t", (0,), None)
        plain = np.random.default_rng(3)
        reference = 0
        while reference < cap and plain.random() < probability:
            reference += 1
        assert attempts == reference
        # Same post-state: the next draw from either generator agrees.
        assert budgeted.random() == plain.random()

    def test_backoff_cost_deterministic_and_growing(self):
        policy = ResiliencePolicy(retry_budget=2, backoff_base=0.05)
        one = policy.backoff_cost(policy.rng(7, 1), 1)
        two = policy.backoff_cost(policy.rng(7, 1), 2)
        assert one > 0.0
        assert two > one * 2  # exponential: second retry costs double+
        assert policy.backoff_cost(policy.rng(7, 1), 2) == two


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------
class TestShardBreaker:
    def _breaker(self, **overrides):
        policy = replace(
            RESILIENCE_POLICIES["default"],
            breaker_threshold=overrides.pop("threshold", 2),
            breaker_window=overrides.pop("window", 40.0),
            breaker_cooldown=overrides.pop("cooldown", 30.0),
        )
        stats = ResilienceStats()
        return ShardBreaker(shard_id=0, policy=policy, stats=stats), stats

    def test_opens_after_threshold_distinct_ticks(self):
        breaker, stats = self._breaker()
        breaker.record_failure(1.0)
        breaker.record_failure(1.0)  # same tick: deduped
        assert breaker.state == "closed"
        breaker.record_failure(2.0)
        assert breaker.state == "open"
        assert stats.breaker_opens == 1
        assert not breaker.allow(2.0)

    def test_window_prunes_stale_strikes(self):
        breaker, _ = self._breaker(window=10.0)
        breaker.record_failure(0.0)
        breaker.record_failure(20.0)  # first strike fell out of the window
        assert breaker.state == "closed"

    def test_half_open_then_close_or_reopen(self):
        breaker, stats = self._breaker(cooldown=30.0)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state == "open"
        assert not breaker.allow(10.0)  # cooldown not elapsed
        assert breaker.allow(32.0)  # half-open probe admitted
        assert breaker.state == "half_open"
        breaker.record_success(32.0)
        assert breaker.state == "closed"
        # Reopen path: fail the half-open probe instead.
        breaker.record_failure(40.0)
        breaker.record_failure(41.0)
        assert breaker.allow(71.1)
        breaker.record_failure(71.1)
        assert breaker.state == "open"
        assert stats.breaker_log == [
            (2.0, 0, "closed", "open"),
            (32.0, 0, "open", "half_open"),
            (32.0, 0, "half_open", "closed"),
            (41.0, 0, "closed", "open"),
            (71.1, 0, "open", "half_open"),
            (71.1, 0, "half_open", "open"),
        ]


# ----------------------------------------------------------------------
# Deadlines, shedding, availability
# ----------------------------------------------------------------------
class _FakeProbe(ProbePayload):
    @property
    def num_probes(self):
        return 1

    def __len__(self):
        return 3


class TestSheddingAndAvailability:
    def _schedules(self):
        original = FleetSchedule()
        original.query(0.0, 1, (0, 1, 2), k=3)
        original.query(0.0, 2, (0, 1, 2), k=3)
        original.probe(0.0, 1, _FakeProbe())
        perturbed = FleetSchedule()
        for event, late in zip(original.ordered(), (100.0, 0.5, 100.0)):
            perturbed.add(replace(event, time=event.time + late))
        return original, perturbed

    def test_no_deadline_is_identity(self):
        original, perturbed = self._schedules()
        policy = ResiliencePolicy()
        assert shed_late_queries(original, perturbed, policy, ResilienceStats()) is perturbed

    def test_late_queries_shed_probes_exempt(self):
        original, perturbed = self._schedules()
        stats = ResilienceStats()
        policy = ResiliencePolicy(deadline=15.0)
        kept = shed_late_queries(original, perturbed, policy, stats)
        assert stats.shed_queries == 1  # the 100s-late benign query
        kinds = [
            isinstance(e.payload, ProbePayload) for e in kept.ordered()
        ]
        assert kinds.count(True) == 1  # the 100s-late probe survived
        assert len(kept.ordered()) == 2

    def test_measure_availability_scores_and_penalizes(self):
        original, perturbed = self._schedules()
        events = perturbed.ordered()
        # Answer both benign queries at their perturbed times: one late.
        responses = [
            type("R", (), {"seq": e.seq, "time": e.time})()
            for e in events
            if not isinstance(e.payload, ProbePayload)
        ]
        report = measure_availability(original, responses, deadline=15.0)
        assert (report.total, report.answered, report.on_time) == (2, 2, 1)
        assert report.availability == 1.0
        assert report.slo_attainment == 0.5
        penalized = measure_availability(
            original, responses, deadline=15.0, penalized=5
        )
        assert penalized.penalized == 2  # clamped to answered
        assert penalized.availability == 0.0

    def test_empty_schedule_is_fully_available(self):
        report = measure_availability(FleetSchedule(), [], deadline=1.0)
        assert report.availability == 1.0
        assert report.slo_attainment == 1.0


# ----------------------------------------------------------------------
# Serving-stack integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trained(tiny_corpus):
    """A trained, userless Pelican plus per-user splits; tests deepcopy."""
    pelican = Pelican(
        tiny_corpus.spec(LEVEL),
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=16, epochs=2, patience=None),
            personalization=PersonalizationConfig(epochs=2, patience=None),
            privacy_temperature=1e-3,
            seed=3,
        ),
    )
    train, _ = tiny_corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    pelican.initial_training(train)
    splits = {
        uid: tiny_corpus.user_dataset(uid, LEVEL).split(0.8)
        for uid in tiny_corpus.personal_ids
    }
    return pelican, splits


def _schedule(corpus, splits, ticks=3):
    schedule = FleetSchedule()
    for i, uid in enumerate(corpus.personal_ids):
        schedule.onboard(float(i), uid, splits[uid][0], deployment=DeploymentMode.CLOUD)
    tick = 10.0
    for j in range(ticks):
        for uid in corpus.personal_ids:
            schedule.query(tick, uid, splits[uid][1].windows[j].history, k=3)
        tick += 10.0
    return schedule


def _cluster(trained_pelican, **kwargs):
    return Cluster.from_trained(
        copy.deepcopy(trained_pelican),
        num_shards=kwargs.pop("num_shards", 2),
        registry_capacity=kwargs.pop("registry_capacity", 2),
        **kwargs,
    )


class TestNullIdentity:
    def test_chaos_fleet_null_resilience_is_byte_identical(self, trained, tiny_corpus):
        pelican, splits = trained
        schedule = _schedule(tiny_corpus, splits)
        policy = chaos_policy("hostile", seed=5)
        bare = ChaosFleet(copy.deepcopy(pelican), policy, registry_capacity=1)
        nulled = ChaosFleet(
            copy.deepcopy(pelican),
            policy,
            registry_capacity=1,
            resilience=ResiliencePolicy(),
        )
        assert bare.run(schedule) == nulled.run(schedule)
        assert bare.signature() == nulled.signature()
        # The golden contract: the key set must not gain resilience_* keys.
        assert not any(k.startswith("resilience_") for k in nulled.signature())

    def test_cluster_null_resilience_is_byte_identical(self, trained, tiny_corpus):
        pelican, splits = trained
        schedule = _schedule(tiny_corpus, splits)
        policy = chaos_policy("shard_outage", seed=2)
        bare = _cluster(pelican, policy=policy)
        nulled = _cluster(pelican, policy=policy, resilience=ResiliencePolicy())
        assert bare.run(schedule) == nulled.run(schedule)
        assert bare.signature() == nulled.signature()
        assert not any(k.startswith("resilience_") for k in nulled.signature())

    def test_overlay_keys_join_only_when_active(self, trained, tiny_corpus):
        pelican, splits = trained
        schedule = _schedule(tiny_corpus, splits)
        cluster = _cluster(
            pelican,
            policy=chaos_policy("shard_outage", seed=2),
            resilience=resilience_policy("default", seed=2),
        )
        cluster.run(schedule)
        signature = cluster.signature()
        assert any(k.startswith("resilience_") for k in signature)
        assert signature["resilience_shed_queries"] == cluster.resilience_stats.shed_queries


class TestFullOutageRegression:
    """The PR-4 hole: ``_failover_target`` used to return the downed home
    shard when *every* candidate was down; now it returns ``None`` and the
    caller chooses ladder vs counted-unprotected-legacy behaviour."""

    def _all_down_cluster(self, trained_pelican, tiny_corpus, splits, resilience):
        cluster = _cluster(trained_pelican, resilience=resilience)
        onboards = FleetSchedule()
        for i, uid in enumerate(tiny_corpus.personal_ids):
            onboards.onboard(
                float(i), uid, splits[uid][0], deployment=DeploymentMode.CLOUD
            )
        cluster.run(onboards)
        cluster._outages = {
            shard_id: [(0.0, 1e9)] for shard_id in range(cluster.num_shards)
        }
        return cluster

    def _requests(self, tiny_corpus, splits):
        return [
            QueryRequest(
                user_id=uid, history=tuple(splits[uid][1].windows[0].history), k=3
            )
            for uid in tiny_corpus.personal_ids
        ]

    def test_failover_target_now_returns_none(self, trained, tiny_corpus):
        pelican, splits = trained
        cluster = self._all_down_cluster(pelican, tiny_corpus, splits, None)
        uid = tiny_corpus.personal_ids[0]
        home = cluster.placement.shard_for(uid)
        assert cluster._failover_target(uid, home, 100.0) is None

    def test_unprotected_legacy_path_is_counted(self, trained, tiny_corpus):
        pelican, splits = trained
        cluster = self._all_down_cluster(pelican, tiny_corpus, splits, None)
        requests = self._requests(tiny_corpus, splits)
        served = cluster._serve_tick(100.0, requests)
        # Old behaviour preserved: every query still answered at home...
        assert all(r is not None for r in served)
        assert all(r.degraded is None for r in served)
        # ...but the fiction is now counted, so baselines can be penalized.
        assert cluster.resilience_stats.unprotected_outage_queries == len(requests)

    def test_ladder_answers_full_outage_degraded(self, trained, tiny_corpus):
        pelican, splits = trained
        cluster = self._all_down_cluster(
            pelican, tiny_corpus, splits, resilience_policy("default", seed=0)
        )
        requests = self._requests(tiny_corpus, splits)
        served = cluster._serve_tick(100.0, requests)
        assert all(r is not None for r in served)
        # Home registries still hold hot copies, so the stale tier answers.
        assert all(r.degraded == "stale" for r in served)
        stats = cluster.resilience_stats
        assert stats.full_outage_queries == len(requests)
        assert stats.degraded_stale == len(requests)
        assert stats.unprotected_outage_queries == 0

    def test_ladder_walks_general_and_prior_tiers(self, trained, tiny_corpus):
        pelican, splits = trained
        for tier in ("general", "prior"):
            policy = replace(
                resilience_policy("default", seed=0), degrade_tiers=(tier,)
            )
            cluster = self._all_down_cluster(pelican, tiny_corpus, splits, policy)
            requests = self._requests(tiny_corpus, splits)
            served = cluster._serve_tick(100.0, requests)
            assert all(r is not None and r.degraded == tier for r in served)
            assert all(len(r.top_k) == 3 for r in served)


class TestResilientRuns:
    def test_shard_outage_availability_meets_slo(self, trained, tiny_corpus):
        """The acceptance bar: >= 99% availability under shard_outage with
        the default policy, and never worse than the unprotected baseline."""
        pelican, splits = trained
        schedule = _schedule(tiny_corpus, splits, ticks=4)
        deadline = RESILIENCE_POLICIES["default"].deadline

        def availability(resilience):
            cluster = _cluster(
                pelican,
                policy=chaos_policy("shard_outage", seed=3),
                resilience=resilience,
            )
            responses = cluster.run(schedule)
            return measure_availability(
                schedule,
                responses,
                deadline,
                penalized=cluster.resilience_stats.unprotected_outage_queries,
            ).availability

        resilient = availability(resilience_policy("default", seed=3))
        baseline = availability(None)
        assert resilient >= 0.99
        assert resilient >= baseline

    def test_blackout_degrades_instead_of_unprotected(self, trained, tiny_corpus):
        """Under a total blackout the ladder converts unprotected answers
        into flagged degraded ones and lifts penalized availability."""
        pelican, splits = trained
        schedule = _schedule(tiny_corpus, splits, ticks=4)

        def run(resilience):
            cluster = _cluster(
                pelican, policy=chaos_policy("blackout", seed=0), resilience=resilience
            )
            responses = cluster.run(schedule)
            return cluster, responses

        baseline, base_responses = run(None)
        assert baseline.resilience_stats.unprotected_outage_queries > 0

        resilient, responses = run(resilience_policy("default", seed=0))
        stats = resilient.resilience_stats
        assert stats.unprotected_outage_queries == 0
        assert stats.degraded_queries > 0
        assert any(r.degraded for r in responses)
        deadline = RESILIENCE_POLICIES["default"].deadline
        resilient_avail = measure_availability(
            schedule, responses, deadline, penalized=0
        ).availability
        baseline_avail = measure_availability(
            schedule,
            base_responses,
            deadline,
            penalized=baseline.resilience_stats.unprotected_outage_queries,
        ).availability
        assert resilient_avail > baseline_avail

    def test_blackout_run_is_bit_deterministic(self, trained, tiny_corpus):
        """Same seed + schedule + policies => identical responses, stats,
        and breaker transition log (backoff jitter included)."""
        pelican, splits = trained
        schedule = _schedule(tiny_corpus, splits, ticks=4)

        def run():
            cluster = _cluster(
                pelican,
                policy=chaos_policy("blackout", seed=1),
                resilience=resilience_policy("default", seed=1),
            )
            responses = cluster.run(schedule)
            return responses, cluster.resilience_stats, cluster.signature()

        first_responses, first_stats, first_sig = run()
        second_responses, second_stats, second_sig = run()
        assert first_responses == second_responses
        assert first_stats.breaker_log == second_stats.breaker_log
        assert first_stats.signature() == second_stats.signature()
        assert first_sig == second_sig

    def test_budget_denials_surface_in_stats(self, trained, tiny_corpus):
        """A strict budget under heavy loss records typed denials instead
        of paying unbounded retries."""
        pelican, splits = trained
        schedule = _schedule(tiny_corpus, splits)
        lossy = chaos_policy("blackout", seed=4)  # drop_probability 0.3
        fleet = ChaosFleet(
            copy.deepcopy(pelican),
            lossy,
            registry_capacity=1,
            resilience=replace(resilience_policy("strict", seed=4), deadline=None),
        )
        fleet.run(schedule)
        stats = fleet.resilience_stats
        unbudgeted = ChaosFleet(copy.deepcopy(pelican), lossy, registry_capacity=1)
        unbudgeted.run(schedule)
        assert stats.retries_denied == len(stats.denial_log)
        assert stats.retries_denied > 0
        assert stats.backoff_seconds > 0.0
        # The budget strictly reduces retries actually paid.
        assert fleet.chaos.transfer_retries < unbudgeted.chaos.transfer_retries

    def test_blackout_preset_registered(self):
        policy = CHAOS_POLICIES["blackout"]
        assert not policy.is_null
        assert policy.shard_outage_duration > policy.shard_outage_rate
