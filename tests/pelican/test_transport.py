"""Unit tests for the simulated device/cloud channel."""

import pytest

from repro.pelican import Channel


class TestChannel:
    def test_transfer_time_model(self):
        channel = Channel(bandwidth_mbps=8.0, rtt_ms=100.0)
        seconds = channel.download(b"x" * 1_000_000)  # 1 MB over 8 Mbps = 1 s
        assert abs(seconds - (0.1 + 1.0)) < 1e-9

    def test_directional_byte_accounting(self):
        channel = Channel()
        channel.download(b"x" * 100, label="model")
        channel.upload(b"y" * 40, label="update")
        channel.upload(b"z" * 10)
        assert channel.bytes_down == 100
        assert channel.bytes_up == 50
        assert len(channel.records) == 3
        assert channel.records[0].label == "model"

    def test_total_seconds_accumulate(self):
        channel = Channel(bandwidth_mbps=1.0, rtt_ms=0.0)
        channel.download(b"x" * 125_000)  # 1 Mb / 1 Mbps = 1 s
        channel.upload(b"x" * 125_000)
        assert abs(channel.total_simulated_seconds - 2.0) < 1e-9

    def test_invalid_bandwidth_rejected(self):
        channel = Channel(bandwidth_mbps=0.0)
        with pytest.raises(ValueError):
            channel.download(b"x")
