"""Service front door: admission control, latency book, endpoints
(DESIGN.md §15).

The admission queue is a deterministic single-server simulation, so its
unit tests need no fleet at all — they drive :meth:`ServiceFrontDoor.admit`
directly and check flush times against hand-computed values.  The
integration half runs generated traffic through real serving stacks:
conservation (generated == answered + shed + rejected), the typed
``submit`` surface, health/stats endpoints, bit-identical same-seed
reruns under chaos and across the workers axis, and a 10k-device
workload reporting p50/p95/p99 + SLO attainment.

A committed golden (``golden_service_signature.json``) pins the full
front-door signature — fleet books plus the ``service_*`` latency-book
projection — for one canonical generated run::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src pytest tests/pelican/test_service.py
"""

import copy
import json
import os
from pathlib import Path

import pytest

from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.models import GeneralModelConfig, PersonalizationConfig
from repro.pelican import (
    ChaosFleet,
    Cluster,
    DeploymentMode,
    EventKind,
    Fleet,
    FleetSchedule,
    LatencyBook,
    Pelican,
    PelicanConfig,
    ServiceConfig,
    ServiceFrontDoor,
    ServiceRequest,
    chaos_policy,
    resilience_policy,
    totals_signature,
)
from repro.traffic import RegimeTraffic, TrafficConfig, TrafficGenerator

GOLDEN_PATH = Path(__file__).parent / "golden_service_signature.json"
LEVEL = SpatialLevel.BUILDING


def make_door(**config):
    """A front door over no fleet at all: admission is fleet-free."""
    return ServiceFrontDoor(object(), ServiceConfig(**config))


def burst(times, uid=1):
    schedule = FleetSchedule()
    for t in times:
        schedule.query(t, uid, [("h", t)], k=2)
    return schedule


def admitted_times(schedule):
    return [e.time for e in schedule.ordered()]


# ----------------------------------------------------------------------
# Admission queue unit tests (no fleet, no model)
# ----------------------------------------------------------------------
class TestAdmissionQueue:
    def test_batch_flushes_when_it_fills(self):
        door = make_door(
            window=10.0, max_batch=3, service_overhead=0.0, per_query_seconds=0.0
        )
        admitted = door.admit(burst([0.0, 1.0, 2.0, 5.0]))
        # The first three fill the batch at t=2; the straggler waits out
        # the full window.
        assert admitted_times(admitted) == [2.0, 2.0, 2.0, 15.0]
        assert door.stats.flushes == 2

    def test_window_expiry_flushes_partial_batch(self):
        door = make_door(
            window=0.5, max_batch=100, service_overhead=0.0, per_query_seconds=0.0
        )
        admitted = door.admit(burst([0.0, 0.2, 1.0]))
        assert admitted_times(admitted) == [0.5, 0.5, 1.5]
        assert door.stats.flushes == 2

    def test_busy_dispatcher_queues_later_flushes(self):
        # Per-request admission with a 2s service time: each flush waits
        # for the dispatcher, so queueing delay compounds.
        door = make_door(
            window=0.0, max_batch=1, service_overhead=2.0, per_query_seconds=0.0
        )
        admitted = door.admit(burst([0.0, 0.5, 1.0]))
        assert admitted_times(admitted) == [0.0, 2.0, 4.0]

    def test_capacity_overflow_rejected_at_the_door(self):
        door = make_door(window=100.0, max_batch=100, queue_capacity=2)
        door.admit(burst([0.0, 0.0, 0.0, 0.0, 0.0]))
        assert door.stats.admitted == 2
        assert door.stats.rejected == 3
        assert door.stats.generated == 5
        assert door.stats.max_queue_depth == 2

    def test_per_request_zero_cost_admission_is_identity(self):
        """window=0, max_batch=1, zero cost: the admitted schedule is the
        original — seqs, times, payloads, options."""
        door = make_door(
            window=0.0, max_batch=1, service_overhead=0.0, per_query_seconds=0.0
        )
        schedule = burst([0.0, 0.5, 0.5, 3.25])
        assert door.admit(schedule).ordered() == schedule.ordered()

    def test_flushing_only_moves_queries_later(self):
        door = make_door(window=0.3, max_batch=4)
        schedule = burst([0.0, 0.1, 0.1, 0.2, 1.0, 1.05, 4.0])
        admitted = door.admit(schedule)
        by_seq = {e.seq: e for e in admitted.ordered()}
        for event in schedule.ordered():
            assert by_seq[event.seq].time >= event.time
            assert by_seq[event.seq].payload == event.payload
            assert by_seq[event.seq].options == event.options

    def test_lifecycle_events_pass_through_untouched(self, tiny_corpus):
        uid = tiny_corpus.personal_ids[0]
        data, _ = tiny_corpus.user_dataset(uid, LEVEL).split(0.8)
        schedule = FleetSchedule()
        schedule.onboard(0.0, uid, data, deployment=DeploymentMode.CLOUD)
        schedule.query(1.0, uid, [("h", 1)], k=2)
        schedule.update(2.0, uid, data)
        door = make_door(window=0.25, max_batch=8)
        admitted = {e.seq: e for e in door.admit(schedule).ordered()}
        for event in schedule.ordered():
            if event.kind is not EventKind.QUERY:
                assert admitted[event.seq] == event
        assert door.stats.generated == 1

    def test_admission_is_deterministic(self):
        times = [0.0, 0.01, 0.02, 0.5, 0.51, 2.0, 2.0, 2.0, 9.0]
        first = make_door(window=0.1, max_batch=3).admit(burst(times))
        second = make_door(window=0.1, max_batch=3).admit(burst(times))
        assert first.ordered() == second.ordered()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(window=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServiceConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            ServiceConfig(service_overhead=-0.1)


class TestLatencyBook:
    def test_nearest_rank_percentiles(self):
        book = LatencyBook(deadline=10.0)
        for latency in [5.0, 1.0, 3.0, 2.0, 4.0]:
            book.observe(queue=latency, defer=0.0, service=0.0)
        assert book.percentile(50) == 3.0
        assert book.percentile(95) == 5.0
        assert book.percentile(99) == 5.0
        assert book.percentile(20) == 1.0

    def test_slo_counts_generated_not_just_answered(self):
        book = LatencyBook(deadline=2.0)
        book.generated = 4
        book.observe(queue=1.0, defer=0.5, service=0.1)  # 1.6s: on time
        book.observe(queue=2.0, defer=1.0, service=0.1)  # 3.1s: late
        # Two generated queries never answered (rejected/shed) also
        # count against attainment.
        assert book.answered == 2
        assert book.on_time == 1
        assert book.slo_attainment == 0.25

    def test_signature_of_empty_book(self):
        sig = LatencyBook(deadline=1.5).signature()
        assert sig["answered"] == 0
        assert sig["p50_latency"] == 0.0
        assert sig["slo_attainment"] == 1.0
        assert sig["slo_deadline"] == 1.5


# ----------------------------------------------------------------------
# Integration: generated traffic through real serving stacks
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def service_base(tiny_corpus):
    """(pristine trained pelican, splits, compiled workload schedule)."""
    pelican = Pelican(
        tiny_corpus.spec(LEVEL),
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=16, epochs=2, patience=None),
            personalization=PersonalizationConfig(epochs=2, patience=None),
            privacy_temperature=1e-3,
            seed=3,
        ),
    )
    train, _ = tiny_corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    pelican.initial_training(train)
    splits = {
        uid: tiny_corpus.user_dataset(uid, LEVEL).split(0.8)
        for uid in tiny_corpus.personal_ids
    }
    traffic = TrafficConfig(
        seed=3,
        horizon=120.0,
        regimes=(RegimeTraffic(rate=0.08),),
        devices_per_user=4,
        include_onboards=True,
        onboard_spacing=5.0,
        update_prob=0.5,
    )
    schedule = TrafficGenerator(traffic).compile(
        {uid: [w.history for w in holdout.windows] for uid, (_, holdout) in splits.items()},
        onboard_data={uid: train for uid, (train, _) in splits.items()},
        update_data={uid: train for uid, (train, _) in splits.items()},
    )
    return pelican, splits, schedule


def count_queries(schedule):
    return sum(
        1
        for e in schedule.ordered()
        if e.kind is EventKind.QUERY and isinstance(e.payload, tuple)
    )


class TestFrontDoorServing:
    def test_conservation_and_endpoints(self, service_base):
        pristine, _, schedule = service_base
        front = ServiceFrontDoor(
            Fleet(copy.deepcopy(pristine), registry_capacity=1),
            ServiceConfig(window=0.1, max_batch=8),
        )
        responses = front.run(schedule)
        generated = count_queries(schedule)
        assert generated > 0
        assert front.stats.generated == generated
        # Conservation: every generated query is answered, shed, or
        # rejected — nothing vanishes.
        assert front.book.answered + front.shed + front.stats.rejected == generated
        assert len(responses) == front.book.answered
        assert front.stats.admitted == generated  # default capacity holds

        health = front.health()
        assert health["status"] == "ok"
        assert health["answered"] == generated
        stats = front.endpoint_stats()
        assert stats["flushes"] == front.stats.flushes
        assert 0.0 < stats["p50_latency"] <= stats["p95_latency"] <= stats["p99_latency"]
        assert stats["slo_attainment"] == 1.0

    def test_signature_overlay_only_when_front_door_active(self, service_base):
        pristine, _, schedule = service_base
        fleet = Fleet(copy.deepcopy(pristine), registry_capacity=1)
        front = ServiceFrontDoor(fleet, ServiceConfig(window=0.1, max_batch=8))
        front.run(schedule)
        with_door = front.signature()
        service_keys = {k for k in with_door if k.startswith("service_")}
        assert service_keys  # overlay joined
        # The fleet's own books never learn about the front door: a
        # plain replay keeps the exact legacy key set.
        plain = Fleet(copy.deepcopy(pristine), registry_capacity=1)
        plain.run(schedule)
        assert not any(k.startswith("service_") for k in plain.report.signature())
        assert set(with_door) == set(plain.report.signature()) | service_keys

    def test_micro_batching_coalesces_flushes(self, service_base):
        pristine, _, schedule = service_base
        batched = ServiceFrontDoor(
            Fleet(copy.deepcopy(pristine), registry_capacity=1),
            ServiceConfig(window=5.0, max_batch=16),
        )
        per_request = ServiceFrontDoor(
            Fleet(copy.deepcopy(pristine), registry_capacity=1),
            ServiceConfig(window=0.0, max_batch=1),
        )
        batched.run(schedule)
        per_request.run(copy.deepcopy(schedule))
        assert per_request.stats.flushes == per_request.stats.admitted
        assert batched.stats.flushes < per_request.stats.flushes
        assert batched.book.answered == per_request.book.answered

    def test_submit_typed_surface(self, service_base):
        pristine, splits, _ = service_base
        fleet = Fleet(copy.deepcopy(pristine), registry_capacity=2)
        for i, (uid, (train, _)) in enumerate(sorted(splits.items())):
            fleet.onboard(
                uid,
                train,
                deployment=DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL,
            )
        front = ServiceFrontDoor(fleet, ServiceConfig(window=0.05, max_batch=4))
        requests = [
            ServiceRequest(
                time=0.01 * i,
                user_id=uid,
                history=holdout.windows[i % len(holdout.windows)].history,
                k=3,
            )
            for i, (uid, (_, holdout)) in enumerate(sorted(splits.items()))
        ]
        out = front.submit(requests)
        assert [o.request for o in out] == requests  # request order kept
        for o in out:
            assert o.status == "ok"
            assert o.response is not None and len(o.response.top_k) == 3
            assert o.latency is not None and o.latency > 0.0

    def test_submit_reports_rejections(self, service_base):
        pristine, splits, _ = service_base
        fleet = Fleet(copy.deepcopy(pristine), registry_capacity=2)
        for uid, (train, _) in sorted(splits.items()):
            fleet.onboard(uid, train, deployment=DeploymentMode.CLOUD)
        front = ServiceFrontDoor(
            fleet, ServiceConfig(window=10.0, max_batch=64, queue_capacity=1)
        )
        uid, (_, holdout) = sorted(splits.items())[0]
        history = holdout.windows[0].history
        out = front.submit(
            [ServiceRequest(time=0.0, user_id=uid, history=history) for _ in range(4)]
        )
        statuses = [o.status for o in out]
        assert statuses.count("ok") == 1
        assert statuses.count("rejected") == 3
        assert front.health()["status"] == "rejecting"

    def test_queue_delay_sheds_through_resilience_path(self, service_base):
        """A 60s micro-batch window against a 1s resilience deadline:
        every admitted query's queueing delay blows the deadline, so the
        whole workload sheds through ``shed_late_queries`` — and lands
        in the resilience layer's own shed counter."""
        pristine, _, schedule = service_base
        fleet = ChaosFleet(
            copy.deepcopy(pristine),
            chaos_policy("none", seed=3),
            registry_capacity=1,
            resilience=resilience_policy("default", seed=3, deadline=1.0),
        )
        front = ServiceFrontDoor(
            fleet, ServiceConfig(window=60.0, max_batch=10_000)
        )
        responses = front.run(schedule)
        generated = count_queries(schedule)
        assert responses == []
        assert front.shed == generated
        assert fleet.resilience_stats.shed_queries == generated
        assert front.book.answered + front.shed + front.stats.rejected == generated
        assert front.health()["status"] == "shedding"
        sig = front.signature()
        assert sig["service_slo_attainment"] == 0.0
        assert sig["resilience_shed_queries"] == generated

    def test_same_seed_chaos_run_is_bit_identical(self, service_base):
        pristine, _, schedule = service_base

        def run():
            fleet = ChaosFleet(
                copy.deepcopy(pristine),
                chaos_policy("lossy_network", seed=7),
                registry_capacity=1,
                resilience=resilience_policy("default", seed=7),
            )
            front = ServiceFrontDoor(fleet, ServiceConfig(window=0.1, max_batch=8))
            return front.run(schedule), front.signature()

        first_responses, first_sig = run()
        rerun_responses, rerun_sig = run()
        assert rerun_responses == first_responses
        assert rerun_sig == first_sig
        assert any(k.startswith("service_") for k in first_sig)
        assert any(k.startswith("chaos_") for k in first_sig)

    @pytest.mark.parametrize("workers", [0, 2])
    def test_cluster_workers_axis_is_transparent(self, service_base, workers):
        """The front door over a 2-shard cluster: worker processes must
        not move a single bit — responses and totals both match the
        serial run (compared against the committed-by-value serial
        baseline computed per test run)."""
        pristine, _, schedule = service_base

        def run(n):
            cluster = Cluster.from_trained(
                copy.deepcopy(pristine), num_shards=2, registry_capacity=1, workers=n
            )
            front = ServiceFrontDoor(cluster, ServiceConfig(window=0.1, max_batch=8))
            try:
                responses = front.run(schedule)
                return responses, totals_signature(front.signature())
            finally:
                cluster.close()

        serial = run(0)
        if workers:
            assert run(workers) == serial
        else:
            assert run(0) == serial  # serial determinism

    def test_ten_thousand_devices_report_percentiles_and_slo(self, service_base):
        """ISSUE acceptance: a 10k-device generated workload through the
        front door, with p50/p95/p99 and SLO attainment reported."""
        pristine, splits, _ = service_base
        traffic = TrafficConfig(
            seed=41,
            horizon=40.0,
            regimes=(RegimeTraffic(rate=0.001),),
            devices_per_user=5_000,  # 2 users × 5000 = 10k devices
            include_onboards=True,
            onboard_spacing=5.0,
        )
        train_data = {uid: train for uid, (train, _) in splits.items()}
        schedule = TrafficGenerator(traffic).compile(
            {
                uid: [w.history for w in holdout.windows]
                for uid, (_, holdout) in splits.items()
            },
            onboard_data=train_data,
        )
        generated = count_queries(schedule)
        assert generated > 100  # the 10k devices actually produce load
        front = ServiceFrontDoor(
            Fleet(copy.deepcopy(pristine), registry_capacity=1),
            ServiceConfig(window=0.2, max_batch=64, queue_capacity=None),
        )
        front.run(schedule)
        stats = front.endpoint_stats()
        assert stats["answered"] == generated
        assert 0.0 < stats["p50_latency"] <= stats["p95_latency"] <= stats["p99_latency"]
        assert 0.0 < stats["slo_attainment"] <= 1.0
        assert stats["flushes"] < generated  # micro-batching engaged


# ----------------------------------------------------------------------
# Golden: the latency-book projection of one canonical generated run
# ----------------------------------------------------------------------
def _canonical_pelican():
    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=12,
            num_contributors=3,
            num_personal_users=2,
            num_days=14,
            seed=5,
        )
    )
    pelican = Pelican(
        corpus.spec(LEVEL),
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=12, epochs=2, patience=None),
            personalization=PersonalizationConfig(
                epochs=2, patience=None, scratch_hidden_size=8
            ),
            privacy_temperature=1e-3,
            seed=5,
        ),
    )
    train, _ = corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    pelican.initial_training(train)
    splits = {
        uid: corpus.user_dataset(uid, LEVEL).split(0.8) for uid in corpus.personal_ids
    }
    return corpus, pelican, splits


def compute_service_golden():
    _, pelican, splits = _canonical_pelican()
    traffic = TrafficConfig(
        seed=5,
        horizon=90.0,
        regimes=(
            RegimeTraffic(
                regime="campus",
                rate=0.4,
                diurnal_amplitude=0.5,
                diurnal_period=45.0,
            ),
        ),
        devices_per_user=3,
        include_onboards=True,
        onboard_spacing=5.0,
        update_prob=0.5,
    )
    train_data = {uid: train for uid, (train, _) in splits.items()}
    schedule = TrafficGenerator(traffic).compile(
        {
            uid: [w.history for w in holdout.windows]
            for uid, (_, holdout) in splits.items()
        },
        onboard_data=train_data,
        update_data=train_data,
    )
    front = ServiceFrontDoor(
        Fleet(pelican, registry_capacity=1),
        ServiceConfig(window=0.25, max_batch=8, queue_capacity=64),
    )
    front.run(schedule)
    return json.loads(json.dumps(front.signature()))  # exact floats


class TestGoldenServiceSignature:
    def test_signature_matches_committed_golden(self):
        current = compute_service_golden()
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN_PATH.write_text(json.dumps(current, indent=2) + "\n")
        golden = json.loads(GOLDEN_PATH.read_text())
        assert set(current) == set(golden), "service signature fields changed"
        for field in golden:
            assert current[field] == golden[field], (
                f"service accounting drift in {field!r}: "
                f"golden {golden[field]!r} != current {current[field]!r} "
                "(if intentional, regenerate with REPRO_UPDATE_GOLDEN=1)"
            )

    def test_golden_exercises_the_latency_book(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert golden["service_generated"] > 0
        assert golden["service_answered"] == golden["service_generated"]
        assert golden["service_flushes"] < golden["service_generated"]
        assert golden["service_queue_seconds"] > 0.0
        assert golden["service_p50_latency"] > 0.0
        assert golden["service_slo_attainment"] == 1.0
        assert golden["service_max_queue_depth"] >= 2  # coalescing engaged
        # The underlying fleet books ride along under their legacy keys.
        assert golden["queries"] == golden["service_generated"]
        assert golden["onboards"] == 2 and golden["updates"] == 1
