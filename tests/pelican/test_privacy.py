"""Unit tests for the privacy enhancement and leakage accounting."""

import numpy as np
import pytest

from repro.models import NextLocationModel
from repro.pelican import (
    PrivacyReport,
    apply_privacy,
    confidence_sharpness,
    leakage_reduction,
    leakage_reduction_series,
    remove_privacy,
)


class TestLeakageReduction:
    def test_basic_percentage(self):
        assert leakage_reduction(80.0, 40.0) == 50.0

    def test_bounded_below_at_zero(self):
        assert leakage_reduction(40.0, 80.0) == 0.0

    def test_zero_baseline(self):
        assert leakage_reduction(0.0, 0.0) == 0.0

    def test_series(self):
        reduction = leakage_reduction_series({1: 80.0, 3: 60.0}, {1: 40.0, 3: 30.0})
        assert reduction == {1: 50.0, 3: 50.0}

    def test_series_skips_missing_keys(self):
        reduction = leakage_reduction_series({1: 80.0, 3: 60.0}, {1: 40.0})
        assert reduction == {1: 50.0}


class TestPrivacyReport:
    def test_reduction_property(self):
        report = PrivacyReport(
            temperature=1e-3,
            undefended_accuracy={1: 50.0, 3: 80.0},
            defended_accuracy={1: 25.0, 3: 40.0},
        )
        assert report.reduction == {1: 50.0, 3: 50.0}


class TestApplyPrivacy:
    def test_apply_and_remove(self, rng):
        model = NextLocationModel(10, 4, 8, 1, 0.0, rng)
        apply_privacy(model, 1e-2)
        assert model.privacy_temperature == 1e-2
        remove_privacy(model)
        assert model.privacy_temperature == 1.0

    def test_invalid_temperature_rejected(self, rng):
        model = NextLocationModel(10, 4, 8, 1, 0.0, rng)
        with pytest.raises(ValueError):
            apply_privacy(model, 0.0)


class TestSharpness:
    def test_uniform_is_flat(self):
        assert confidence_sharpness(np.full((5, 4), 0.25)) == 0.25

    def test_saturated_is_one(self):
        probs = np.zeros((3, 4))
        probs[:, 0] = 1.0
        assert confidence_sharpness(probs) == 1.0

    def test_single_vector_supported(self):
        assert confidence_sharpness(np.array([0.7, 0.2, 0.1])) == pytest.approx(0.7)
