"""Placement-layer tests (DESIGN.md §9).

The cluster's determinism guarantee starts here: the same ``(seed, user
set, shard count)`` must always produce the identical placement map, for
every policy, across fresh policy instances.
"""

import pytest

from repro.pelican import (
    PLACEMENT_POLICIES,
    HashPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    StickyPlacement,
    make_placement,
)

USERS = list(range(40))


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(PLACEMENT_POLICIES))
    @pytest.mark.parametrize("num_shards", [1, 3, 5])
    def test_same_inputs_same_map(self, name, num_shards):
        """Fresh instances with identical inputs agree exactly."""
        a = make_placement(name, seed=7, num_shards=num_shards)
        b = make_placement(name, seed=7, num_shards=num_shards)
        assert a.placement_map(USERS) == b.placement_map(USERS)

    @pytest.mark.parametrize("name", sorted(PLACEMENT_POLICIES))
    def test_map_independent_of_user_iteration_order(self, name):
        """The map is a function of the user *set*, not presentation order."""
        a = make_placement(name, seed=7, num_shards=3)
        b = make_placement(name, seed=7, num_shards=3)
        assert a.placement_map(USERS) == b.placement_map(list(reversed(USERS)))

    def test_seed_changes_hash_map(self):
        maps = [
            HashPlacement(seed, 4).placement_map(USERS) for seed in range(4)
        ]
        assert any(m != maps[0] for m in maps[1:])

    @pytest.mark.parametrize("name", sorted(PLACEMENT_POLICIES))
    def test_lookup_is_stable(self, name):
        """Repeated lookups of one user never move them."""
        policy = make_placement(name, seed=3, num_shards=4)
        first = [policy.shard_for(uid) for uid in USERS]
        assert [policy.shard_for(uid) for uid in USERS] == first


class TestHashRing:
    def test_all_shards_receive_users(self):
        placement = HashPlacement(seed=0, num_shards=4)
        shards = set(placement.placement_map(range(200)).values())
        assert shards == set(range(4))

    def test_shards_in_range(self):
        placement = HashPlacement(seed=0, num_shards=3)
        assert all(0 <= s < 3 for s in placement.placement_map(USERS).values())

    def test_consistency_under_shard_growth(self):
        """Growing the ring moves only some users — the consistent-hashing
        property that makes resharding cheap."""
        before = HashPlacement(seed=5, num_shards=4).placement_map(range(300))
        after = HashPlacement(seed=5, num_shards=5).placement_map(range(300))
        moved = sum(1 for uid in before if before[uid] != after[uid])
        # Users never move between surviving shards, only onto the new
        # one; expectation is ~1/5 of the population.
        assert 0 < moved < 150
        for uid in before:
            if before[uid] != after[uid]:
                assert after[uid] == 4

    def test_successors_cover_every_shard_once(self):
        placement = HashPlacement(seed=2, num_shards=5)
        for uid in range(20):
            order = placement.successors(uid)
            assert sorted(order) == list(range(5))
            assert order[0] == placement.shard_for(uid)


class TestLeastLoaded:
    def test_balances_within_one(self):
        placement = LeastLoadedPlacement(seed=0, num_shards=3)
        placement.placement_map(USERS)
        assert max(placement.loads) - min(placement.loads) <= 1
        assert sum(placement.loads) == len(USERS)

    def test_assignment_depends_on_arrival_order(self):
        """Stateful by design: the live policy assigns in arrival order."""
        a = LeastLoadedPlacement(seed=0, num_shards=2)
        order_a = [a.shard_for(uid) for uid in (1, 2, 3, 4)]
        b = LeastLoadedPlacement(seed=0, num_shards=2)
        order_b = [b.shard_for(uid) for uid in (4, 3, 2, 1)]
        assert order_a == order_b == [0, 1, 0, 1]  # round robin from empty


class TestSticky:
    def test_pins_survive_relookup(self):
        placement = StickyPlacement(seed=1, num_shards=3)
        pins = {uid: placement.shard_for(uid) for uid in USERS}
        assert placement.pins == pins
        # Tamper with a pin: sticky honors it over the ring.
        placement.pins[USERS[0]] = (pins[USERS[0]] + 1) % 3
        assert placement.shard_for(USERS[0]) == placement.pins[USERS[0]]

    def test_first_placement_matches_hash(self):
        sticky = StickyPlacement(seed=9, num_shards=4)
        hashed = HashPlacement(seed=9, num_shards=4)
        assert sticky.placement_map(USERS) == hashed.placement_map(USERS)


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError, match="unknown placement policy"):
            make_placement("round_trip", seed=0, num_shards=2)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            HashPlacement(seed=0, num_shards=0)

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            PlacementPolicy(seed=0, num_shards=1).shard_for(0)
