"""Unit tests for Pelican phases: cloud training, device personalization,
deployment, and updates."""

import numpy as np
import pytest

from repro.data import SpatialLevel
from repro.models import (
    GeneralModelConfig,
    NextLocationPredictor,
    PersonalizationConfig,
    PersonalizationMethod,
)
from repro.nn import Tensor
from repro.pelican import (
    Channel,
    CloudTrainer,
    DevicePersonalizer,
    DeviceProfile,
    DeploymentMode,
    deploy_cloud,
    deploy_local,
    rebuild_general_model,
    update_personal_model,
)


@pytest.fixture(scope="module")
def cloud(tiny_corpus):
    trainer = CloudTrainer(GeneralModelConfig(hidden_size=16, epochs=3, patience=None), seed=1)
    pooled = tiny_corpus.contributor_dataset(SpatialLevel.BUILDING)
    train, _ = pooled.split_by_user(0.8)
    trainer.train(train)
    return trainer


@pytest.fixture(scope="module")
def personal(tiny_corpus, cloud):
    uid = tiny_corpus.personal_ids[0]
    train, test = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).split(0.8)
    personalizer = DevicePersonalizer(
        PersonalizationConfig(epochs=3, patience=None), seed=2
    )
    model, report, seconds = personalizer.personalize(
        cloud.publish(), train, PersonalizationMethod.TL_FE, privacy_temperature=1e-3
    )
    return model, report, seconds, train, test


class TestCloudPhase:
    def test_training_report_populated(self, cloud):
        assert cloud.training_report is not None
        assert cloud.training_report.macs > 0
        assert cloud.training_report.estimated_billion_cycles > 0

    def test_publish_roundtrip(self, cloud):
        blob = cloud.publish()
        rebuilt = rebuild_general_model(blob, np.random.default_rng(0))
        for (_, a), (_, b) in zip(
            cloud.general_model.named_parameters(), rebuilt.named_parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data)

    def test_publish_before_training_rejected(self):
        trainer = CloudTrainer(GeneralModelConfig(epochs=1))
        with pytest.raises(RuntimeError):
            trainer.publish()


class TestDevicePhase:
    def test_privacy_attached_on_device(self, personal):
        model, _, _, _, _ = personal
        assert model.privacy_temperature == 1e-3

    def test_resource_report(self, personal):
        _, report, seconds, _, _ = personal
        assert report.macs > 0
        assert seconds == DeviceProfile().simulated_seconds(report.macs)

    def test_device_profile_scaling(self):
        fast = DeviceProfile(effective_gmacs_per_second=10.0)
        slow = DeviceProfile(effective_gmacs_per_second=1.0)
        assert slow.simulated_seconds(10**9) == 10 * fast.simulated_seconds(10**9)


class TestDeployment:
    def test_local_and_cloud_agree(self, tiny_corpus, personal):
        model, _, _, _, test = personal
        spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        channel = Channel()
        local = deploy_local(model, spec)
        cloud_ep, upload_seconds = deploy_cloud(model, spec, channel, np.random.default_rng(0))
        assert upload_seconds > 0
        assert channel.bytes_up > 0
        history = test.windows[0].history
        assert local.top_k(history, 3) == cloud_ep.top_k(history, 3)
        assert local.mode == DeploymentMode.LOCAL
        assert cloud_ep.mode == DeploymentMode.CLOUD

    def test_cloud_preserves_privacy_temperature(self, tiny_corpus, personal):
        model, _, _, _, _ = personal
        spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        endpoint, _ = deploy_cloud(model, spec, Channel(), np.random.default_rng(0))
        assert endpoint.predictor.model.privacy_temperature == model.privacy_temperature

    def test_query_stats_tracked(self, tiny_corpus, personal):
        model, _, _, _, test = personal
        spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        endpoint = deploy_local(model, spec)
        endpoint.top_k(test.windows[0].history, 2)
        endpoint.confidences(test.windows[0].history)
        assert endpoint.stats.queries == 2

    def test_cloud_mode_requires_channel(self, tiny_corpus, personal):
        from repro.pelican.deployment import ServiceEndpoint

        model, _, _, _, _ = personal
        spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        with pytest.raises(ValueError):
            ServiceEndpoint(NextLocationPredictor(model, spec), DeploymentMode.CLOUD, None)


class TestUpdates:
    def test_update_preserves_frozen_base(self, personal):
        model, _, _, train, test = personal
        result = update_personal_model(
            model, test, PersonalizationConfig(epochs=2, patience=None), np.random.default_rng(3)
        )
        updated = result.model
        # Frozen base LSTM: flags and values preserved.
        for name, param in updated.named_parameters():
            if name.startswith("lstm."):
                assert not param.requires_grad
        for (name, a), (_, b) in zip(
            model.named_parameters(), updated.named_parameters()
        ):
            if name.startswith("lstm."):
                np.testing.assert_array_equal(a.data, b.data)

    def test_update_changes_trainable_params(self, personal):
        model, _, _, _, test = personal
        result = update_personal_model(
            model, test, PersonalizationConfig(epochs=2, patience=None), np.random.default_rng(3)
        )
        changed = False
        for (name, a), (_, b) in zip(
            model.named_parameters(), result.model.named_parameters()
        ):
            if a.requires_grad and not np.allclose(a.data, b.data):
                changed = True
        assert changed
        assert result.report.macs > 0
        assert result.epochs_run >= 1

    def test_update_on_fully_frozen_model_rejected(self, personal, rng):
        model, _, _, _, test = personal
        frozen = model.copy(rng)
        frozen.freeze()
        with pytest.raises(ValueError):
            update_personal_model(
                frozen, test, PersonalizationConfig(epochs=1), np.random.default_rng(0)
            )
