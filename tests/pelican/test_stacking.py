"""Weight-stack cache, registry coherence, and stacked-tick dispatch
(DESIGN.md §12).

Unit-level counterpart of the fuzz harness's differential tests: the
:class:`WeightStack` row lifecycle (copy-in, reuse, invalidate, free-list
refill, zero-copy gather), the registry's structural coherence hooks
(register / explicit evict / LRU eviction all drop stack rows), the
stacked tick dispatcher's parity and *integer MAC equality* against the
per-model path, the heterogeneous-shape fallback (odd-shaped and
reference-backend models route around the stack without double billing),
and a 2-shard stacked cluster run matching its per-model twin.
"""

import copy

import numpy as np
import pytest

from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.data.features import FeatureSpec, SessionFeatures
from repro.models import (
    GeneralModelConfig,
    NextLocationModel,
    PersonalizationConfig,
    PersonalizationMethod,
)
from repro.pelican import (
    Cluster,
    DeploymentMode,
    Fleet,
    FleetSchedule,
    ModelRegistry,
    Pelican,
    PelicanConfig,
    WeightStack,
    WeightStackCache,
    stack_key,
)
from repro.pelican.dispatch import dispatch_model_batch, dispatch_stacked_tick

LEVEL = SpatialLevel.BUILDING
SPEC = FeatureSpec(num_locations=6)


def _model(seed=0, hidden=8, layers=1, temperature=1.0, surplus=False):
    model = NextLocationModel(
        input_width=SPEC.width,
        num_locations=SPEC.num_locations,
        hidden_size=hidden,
        num_layers=layers,
        dropout=0.0,
        rng=np.random.default_rng(seed),
    )
    if surplus:
        model.add_surplus_lstm(np.random.default_rng(seed + 1))
    model.set_privacy_temperature(temperature)
    model.eval()
    return model


def _histories(seed, count, steps):
    rng = np.random.default_rng(seed)
    return [
        tuple(
            SessionFeatures(
                entry_bin=int(rng.integers(0, SPEC.entry_bins)),
                duration_bin=int(rng.integers(0, SPEC.duration_bins)),
                location=int(rng.integers(0, SPEC.num_locations)),
                day_of_week=int(rng.integers(0, SPEC.days)),
            )
            for _ in range(steps)
        )
        for _ in range(count)
    ]


class TestStackKey:
    def test_same_shape_models_share_a_key(self):
        assert stack_key(_model(1)) == stack_key(_model(2))

    def test_reference_backend_is_unstackable(self):
        model = _model(1)
        model.set_backend("reference")
        assert stack_key(model) is None

    def test_shape_differences_split_keys(self):
        base = stack_key(_model(1))
        assert stack_key(_model(1, hidden=5)) != base
        assert stack_key(_model(1, layers=2)) != base
        # A TL-FE surplus layer changes the cell stack, never mixes.
        assert stack_key(_model(1, surplus=True)) != base


class TestWeightStack:
    def test_ensure_copies_weights_bit_exact(self):
        model = _model(3, temperature=1e-3)
        stack = WeightStack(stack_key(model))
        row = stack.ensure(7, model)
        layers, head_w, head_b, temps = stack.gather([row])
        cell = model.lstm.cells[0]
        np.testing.assert_array_equal(layers[0][0][0], cell.weight_ih.data)
        np.testing.assert_array_equal(layers[0][1][0], cell.weight_hh.data)
        np.testing.assert_array_equal(layers[0][2][0], cell.bias.data)
        np.testing.assert_array_equal(head_w[0], model.head.weight.data)
        np.testing.assert_array_equal(head_b[0], model.head.bias.data)
        assert temps[0] == 1e-3

    def test_present_row_is_trusted_until_invalidated(self):
        """ensure() never recopies a live row — which is exactly why the
        registry MUST invalidate on every replace/drop transition."""
        model = _model(4)
        stack = WeightStack(stack_key(model))
        row = stack.ensure(1, model)
        before = model.head.bias.data.copy()
        model.head.bias.data += 1.0  # mutate after copy-in
        assert stack.ensure(1, model) == row  # cache hit, stale by design
        np.testing.assert_array_equal(stack.gather([row])[2][0], before)
        assert stack.invalidate(1)
        fresh = stack.ensure(1, model)
        np.testing.assert_array_equal(stack.gather([fresh])[2][0], before + 1.0)

    def test_free_list_reuses_rows(self):
        stack = WeightStack(stack_key(_model(0)))
        rows = [stack.ensure(uid, _model(uid)) for uid in (1, 2, 3)]
        stack.invalidate(2)
        assert stack.ensure(9, _model(9)) == rows[1]  # freed slot refilled
        assert len(stack) == 3
        assert not stack.invalidate(2)  # already gone

    def test_contiguous_gather_is_zero_copy(self):
        stack = WeightStack(stack_key(_model(0)))
        for uid in (1, 2, 3):
            stack.ensure(uid, _model(uid))
        layers, head_w, _, _ = stack.gather([0, 1, 2])
        assert np.shares_memory(layers[0][0], stack._w_ih[0])
        assert np.shares_memory(head_w, stack._head_w)
        # Permuted (or duplicate) rows fall back to a gather copy.
        layers, head_w, _, _ = stack.gather([2, 0, 1])
        assert not np.shares_memory(head_w, stack._head_w)
        np.testing.assert_array_equal(head_w[1], stack._head_w[0])

    def test_cache_invalidates_across_all_stacks(self):
        cache = WeightStackCache()
        small, large = _model(1), _model(2, hidden=5)
        cache.stack_for(stack_key(small)).ensure(7, small)
        cache.stack_for(stack_key(large)).ensure(7, large)
        cache.invalidate(7)
        assert all(len(stack) == 0 for stack in cache.stacks())


class TestRegistryCoherence:
    """Every registry transition that replaces or drops a live model must
    drop the user's stack rows (DESIGN.md §12 coherence contract)."""

    def _stacked_row(self, registry, uid):
        model = registry.get(uid)
        stack = registry.stack_cache.stack_for(stack_key(model))
        stack.ensure(uid, model)
        return stack

    def test_reregister_invalidates(self):
        registry = ModelRegistry(capacity=4)
        registry.register(1, _model(1))
        stack = self._stacked_row(registry, 1)
        registry.register(1, _model(99))  # update redeploy
        assert 1 not in stack.rows

    def test_explicit_evict_invalidates(self):
        registry = ModelRegistry(capacity=4)
        registry.register(1, _model(1))
        stack = self._stacked_row(registry, 1)
        registry.evict(1)
        assert 1 not in stack.rows

    def test_lru_eviction_invalidates(self):
        registry = ModelRegistry(capacity=1)
        registry.register(1, _model(1))
        stack = self._stacked_row(registry, 1)
        registry.register(2, _model(2))  # capacity 1: evicts user 1
        assert 1 not in stack.rows

    def test_update_mid_run_serves_fresh_weights(self):
        """End to end through the dispatcher: after an update redeploy the
        next stacked tick must answer from the NEW weights — if the
        register hook failed to invalidate, this would serve v1."""
        registry = ModelRegistry(capacity=4)
        registry.register(1, _model(1))
        registry.register(2, _model(2))
        groups = [
            (1, registry.get(1), _histories(11, 2, 3), 3),
            (2, registry.get(2), _histories(12, 2, 3), 3),
        ]
        assert all(r is not None for r in dispatch_stacked_tick(
            registry.stack_cache, SPEC, groups
        ))
        registry.register(1, _model(41))  # redeploy with fresh weights
        groups = [
            (1, registry.get(1), _histories(11, 2, 3), 3),
            (2, registry.get(2), _histories(12, 2, 3), 3),
        ]
        [(stacked_results, _), _] = dispatch_stacked_tick(
            registry.stack_cache, SPEC, groups
        )
        expected, _ = dispatch_model_batch(_model(41), SPEC, groups[0][2], 3)
        assert [
            [loc for loc, _ in row] for row in stacked_results
        ] == [[loc for loc, _ in row] for row in expected]


class TestStackedTickDispatch:
    def test_parity_and_integer_mac_equality(self):
        """Rankings exact, confidences 1e-9-relative with no absolute
        slack, and the booked MACs are the *same integer* the flop
        counter measures on the per-model path — the root of the
        signature-identity guarantee."""
        cache = WeightStackCache()
        models = [_model(s, temperature=1e-3) for s in (1, 2, 3)]
        groups = [
            (uid, model, _histories(20 + uid, size, 4), k)
            for uid, (model, size, k) in enumerate(zip(models, (3, 1, 2), (3, 1, 4)))
        ]
        served = dispatch_stacked_tick(cache, SPEC, groups)
        assert all(entry is not None for entry in served)
        for (uid, model, histories, k), (results, report) in zip(groups, served):
            expected, measured = dispatch_model_batch(model, SPEC, histories, k)
            assert report.macs == measured.macs  # integer equality
            for got, want in zip(results, expected):
                assert [loc for loc, _ in got] == [loc for loc, _ in want]
                np.testing.assert_allclose(
                    [conf for _, conf in got],
                    [conf for _, conf in want],
                    rtol=1e-9,
                    atol=0.0,
                )

    def test_heterogeneous_shapes_fall_back(self):
        """Odd-shaped, reference-backend, and partnerless models come
        back ``None`` — the caller's per-model path serves them, in the
        same tick, with no stack involvement."""
        cache = WeightStackCache()
        unstackable = _model(5)
        unstackable.set_backend("reference")
        groups = [
            (0, _model(1), _histories(30, 2, 3), 3),
            (1, _model(2), _histories(31, 2, 3), 3),
            (2, _model(3, hidden=5), _histories(32, 2, 3), 3),  # partnerless
            (3, unstackable, _histories(33, 2, 3), 3),
        ]
        served = dispatch_stacked_tick(cache, SPEC, groups)
        assert served[0] is not None and served[1] is not None
        assert served[2] is None and served[3] is None

    def test_underfilled_bucket_is_skipped(self):
        cache = WeightStackCache()
        groups = [(0, _model(1), _histories(40, 2, 3), 3)]
        assert dispatch_stacked_tick(cache, SPEC, groups) == [None]
        # Same shape but different window lengths: separate buckets,
        # both singletons, both skipped.
        groups = [
            (0, _model(1), _histories(41, 2, 3), 3),
            (1, _model(2), _histories(42, 2, 5), 3),
        ]
        assert dispatch_stacked_tick(cache, SPEC, groups) == [None, None]


# ----------------------------------------------------------------------
# Fleet- and cluster-level integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trio_pelican():
    """A trained pelican with 3 personal users — enough for a tick that
    mixes stacked groups with a heterogeneous fallback."""
    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=12,
            num_contributors=3,
            num_personal_users=3,
            num_days=14,
            seed=5,
        )
    )
    pelican = Pelican(
        corpus.spec(LEVEL),
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=12, epochs=2, patience=None),
            personalization=PersonalizationConfig(epochs=2, patience=None),
            privacy_temperature=1e-3,
            seed=5,
        ),
    )
    train, _ = corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    pelican.initial_training(train)
    splits = {
        uid: corpus.user_dataset(uid, LEVEL).split(0.8) for uid in corpus.personal_ids
    }
    return corpus, pelican, splits


def _query_schedule(corpus, splits, repeats=2):
    schedule = FleetSchedule()
    for tick in range(repeats):
        for uid in corpus.personal_ids:
            for window in splits[uid][1].windows[:2]:
                schedule.query(float(10 * (tick + 1)), uid, window.history, k=3)
    return schedule


def _assert_run_parity(stacked_responses, plain_responses):
    assert len(stacked_responses) == len(plain_responses)
    for stacked, plain in zip(stacked_responses, plain_responses):
        assert stacked.user_id == plain.user_id
        assert [loc for loc, _ in stacked.top_k] == [loc for loc, _ in plain.top_k]
        np.testing.assert_allclose(
            [conf for _, conf in stacked.top_k],
            [conf for _, conf in plain.top_k],
            rtol=1e-9,
            atol=0.0,
        )


class TestFleetHeterogeneousTick:
    def test_mixed_shape_tick_matches_per_model_books_exactly(self, trio_pelican):
        """Two default-method (TL-FE) cloud users stack; a TL-FT user —
        no surplus layer, so a different stack key — rides the per-model
        fallback in the SAME tick.  Answers, the report signature, and
        every per-endpoint query ledger must match the per-model run —
        in particular the fallback user's exchanges are billed exactly
        once."""
        corpus, pelican, splits = trio_pelican
        ids = corpus.personal_ids

        def build(stacked):
            fleet = Fleet(copy.deepcopy(pelican), registry_capacity=4, stacked=stacked)
            for i, uid in enumerate(ids):
                method = PersonalizationMethod.TL_FT if i == 2 else None
                fleet.onboard(
                    uid, splits[uid][0], method=method,
                    deployment=DeploymentMode.CLOUD,
                )
            return fleet

        plain, stacked = build(False), build(True)
        schedule = _query_schedule(corpus, splits)
        plain_responses = plain.run(schedule)
        responses = stacked.run(schedule)

        _assert_run_parity(responses, plain_responses)
        assert stacked.report.signature() == plain.report.signature()
        for uid in ids:
            assert (
                stacked.pelican.users[uid].endpoint.stats.queries
                == plain.pelican.users[uid].endpoint.stats.queries
            )
        # The stack really ran: the two same-shaped users hold rows, the
        # TL-FE user never entered any stack.
        rows = {
            uid
            for stack in stacked.registry.stack_cache.stacks()
            for uid in stack.rows
        }
        assert set(ids[:2]) <= rows and ids[2] not in rows


class TestStackedCluster:
    def test_two_shard_stacked_run_matches_plain(self, trio_pelican):
        corpus, pelican, splits = trio_pelican

        def build(stacked):
            cluster = Cluster.from_trained(
                copy.deepcopy(pelican), num_shards=2, registry_capacity=4,
                stacked=stacked,
            )
            for uid in corpus.personal_ids:
                cluster.onboard(uid, splits[uid][0], deployment=DeploymentMode.CLOUD)
            return cluster

        plain, stacked = build(False), build(True)
        schedule = _query_schedule(corpus, splits)
        plain_responses = plain.run(schedule)
        responses = stacked.run(schedule)
        _assert_run_parity(responses, plain_responses)
        assert stacked.signature() == plain.signature()
