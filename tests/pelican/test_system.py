"""Unit tests for the Pelican orchestrator."""

import numpy as np
import pytest

from repro.data import SpatialLevel
from repro.models import GeneralModelConfig, PersonalizationConfig
from repro.pelican import DeploymentMode, Pelican, PelicanConfig


@pytest.fixture(scope="module")
def pelican(tiny_corpus):
    spec = tiny_corpus.spec(SpatialLevel.BUILDING)
    system = Pelican(
        spec,
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=16, epochs=3, patience=None),
            personalization=PersonalizationConfig(epochs=3, patience=None),
            privacy_temperature=1e-3,
            deployment=DeploymentMode.LOCAL,
        ),
    )
    train, _ = tiny_corpus.contributor_dataset(SpatialLevel.BUILDING).split_by_user(0.8)
    system.initial_training(train)
    return system


class TestLifecycle:
    def test_onboarding_before_training_rejected(self, tiny_corpus):
        spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        fresh = Pelican(spec)
        uid = tiny_corpus.personal_ids[0]
        user_ds = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING)
        with pytest.raises(RuntimeError):
            fresh.onboard_user(uid, user_ds)

    def test_onboard_and_query(self, pelican, tiny_corpus):
        uid = tiny_corpus.personal_ids[0]
        train, test = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).split(0.8)
        user = pelican.onboard_user(uid, train)
        assert user.endpoint.predictor.model.privacy_temperature == 1e-3
        top = pelican.query(uid, test.windows[0].history, k=3)
        assert len(top) == 3
        assert all(0 <= loc < pelican.spec.num_locations for loc, _ in top)

    def test_onboard_cloud_deployment(self, pelican, tiny_corpus):
        uid = tiny_corpus.personal_ids[1]
        train, _ = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).split(0.8)
        user = pelican.onboard_user(uid, train, deployment=DeploymentMode.CLOUD)
        assert user.endpoint.mode == DeploymentMode.CLOUD
        assert pelican.channel.bytes_up > 0

    def test_general_download_recorded(self, pelican):
        downloads = [r for r in pelican.channel.records if r.direction == "down"]
        assert downloads  # each onboarding downloads the general model

    def test_update_merges_data(self, pelican, tiny_corpus):
        uid = tiny_corpus.personal_ids[0]
        train, test = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).split(0.8)
        if uid not in pelican.users:
            pelican.onboard_user(uid, train)
        before_windows = len(pelican.users[uid].local_dataset)
        refreshed = pelican.update_user(uid, test)
        assert len(refreshed.local_dataset) == before_windows + len(test)
        assert pelican.users[uid] is refreshed

    def test_update_carries_query_stats_across_redeploy(self, pelican, tiny_corpus):
        """An update swaps the model behind the endpoint; the user's query
        ledger must survive the redeploy (found by the fuzz harness)."""
        uid = tiny_corpus.personal_ids[0]
        train, test = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).split(0.8)
        if uid not in pelican.users:
            pelican.onboard_user(uid, train)
        pelican.query(uid, test.windows[0].history, k=3)
        stats = pelican.users[uid].endpoint.stats
        queries_before = stats.queries
        seconds_before = stats.simulated_network_seconds
        assert queries_before > 0
        refreshed = pelican.update_user(uid, test)
        assert refreshed.endpoint.stats.queries == queries_before
        assert refreshed.endpoint.stats.simulated_network_seconds == seconds_before
        pelican.query(uid, test.windows[0].history, k=3)
        assert refreshed.endpoint.stats.queries == queries_before + 1

    def test_overhead_summary_keys(self, pelican):
        summary = pelican.overhead_summary()
        assert summary["cloud_billion_cycles"] > 0
        assert summary["device_mean_billion_cycles"] > 0
        assert summary["channel_bytes_down"] > 0
