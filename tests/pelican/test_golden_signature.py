"""Golden-signature regression test for fleet accounting.

Replays one small canonical schedule and compares the resulting
:meth:`FleetReport.signature` *exactly* against the committed JSON
(``golden_fleet_signature.json``).  Every field is deterministic — MAC
counts are integer functions of shapes and epochs, simulated seconds are
fixed-order float arithmetic over them, byte counts come from
deterministic serialization — so any drift means an accounting change,
intended or not.

If a change is intentional (e.g. a new cost is now charged), regenerate
the golden and commit it together with the change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src pytest tests/pelican/test_golden_signature.py
"""

import json
import os
from pathlib import Path

from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.models import GeneralModelConfig, PersonalizationConfig
from repro.pelican import (
    DeploymentMode,
    Fleet,
    FleetSchedule,
    Pelican,
    PelicanConfig,
)

GOLDEN_PATH = Path(__file__).parent / "golden_fleet_signature.json"
LEVEL = SpatialLevel.BUILDING


def _canonical_pelican():
    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=12,
            num_contributors=3,
            num_personal_users=2,
            num_days=14,
            seed=5,
        )
    )
    pelican = Pelican(
        corpus.spec(LEVEL),
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=12, epochs=2, patience=None),
            personalization=PersonalizationConfig(
                epochs=2, patience=None, scratch_hidden_size=8
            ),
            privacy_temperature=1e-3,
            seed=5,
        ),
    )
    train, _ = corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    pelican.initial_training(train)
    splits = {
        uid: corpus.user_dataset(uid, LEVEL).split(0.8) for uid in corpus.personal_ids
    }
    return corpus, pelican, splits


def _canonical_schedule(corpus, splits):
    """Every cost source in one schedule: onboards (both deployments),
    coalesced and split batches, an update redeploy, and a capacity-1
    registry forced into evictions and cold loads."""
    schedule = FleetSchedule()
    ids = corpus.personal_ids
    schedule.onboard(0.0, ids[0], splits[ids[0]][0], deployment=DeploymentMode.CLOUD)
    schedule.onboard(1.0, ids[1], splits[ids[1]][0], deployment=DeploymentMode.CLOUD)
    for tick in (10.0, 20.0):
        for uid in ids:
            for window in splits[uid][1].windows[:2]:
                schedule.query(tick, uid, window.history, k=3)
    schedule.update(25.0, ids[0], splits[ids[0]][1])
    for uid in ids:
        schedule.query(30.0, uid, splits[uid][1].windows[0].history, k=2)
    return schedule


def _jsonable(signature):
    return json.loads(json.dumps(signature))  # tuples -> lists, exact floats


def compute_golden(stacked=False):
    corpus, pelican, splits = _canonical_pelican()
    fleet = Fleet(pelican, registry_capacity=1, stacked=stacked)
    fleet.run(_canonical_schedule(corpus, splits))
    return _jsonable(fleet.report.signature())


class TestGoldenSignature:
    def test_signature_matches_committed_golden(self):
        current = compute_golden()
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN_PATH.write_text(json.dumps(current, indent=2) + "\n")
        golden = json.loads(GOLDEN_PATH.read_text())
        assert set(current) == set(golden), "signature fields changed"
        for field in golden:
            assert current[field] == golden[field], (
                f"accounting drift in {field!r}: "
                f"golden {golden[field]!r} != current {current[field]!r} "
                "(if intentional, regenerate with REPRO_UPDATE_GOLDEN=1)"
            )

    def test_stacked_run_matches_committed_golden_unchanged(self):
        """The stacked dispatch (DESIGN.md §12) must reproduce the
        committed golden byte-for-byte — no regeneration allowed.  MACs
        are booked at the per-model-equivalent integer rate, registry
        resolution and channel billing run in the identical order, so if
        this drifts the stacked path is billing differently, which is a
        bug, never an intentional accounting change."""
        current = compute_golden(stacked=True)
        golden = json.loads(GOLDEN_PATH.read_text())
        assert set(current) == set(golden), "signature fields changed"
        for field in golden:
            assert current[field] == golden[field], (
                f"stacked dispatch accounting drift in {field!r}: "
                f"golden {golden[field]!r} != stacked {current[field]!r}"
            )

    def test_golden_run_exercises_every_cost_source(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert golden["onboards"] == 2
        assert golden["updates"] == 1
        assert golden["queries"] == 10
        assert golden["registry_cold_loads"] > 0
        assert golden["registry_evictions"] > 0
        assert golden["network_bytes_up"] > 0
        assert golden["cloud_macs"] > 0 and golden["device_macs"] > 0
