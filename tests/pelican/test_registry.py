"""Unit tests for the cloud-side personalized-model registry."""

import numpy as np
import pytest

from repro.models import NextLocationModel
from repro.pelican import ModelRegistry


def _model(seed=0, temperature=1.0):
    model = NextLocationModel(
        input_width=10,
        num_locations=6,
        hidden_size=8,
        num_layers=1,
        dropout=0.0,
        rng=np.random.default_rng(seed),
    )
    model.set_privacy_temperature(temperature)
    model.eval()
    return model


class TestRegistry:
    def test_register_and_get_hit(self):
        registry = ModelRegistry(capacity=2)
        model = _model()
        registry.register(7, model)
        assert registry.get(7) is model
        assert registry.stats.hits == 1
        assert registry.stats.cold_loads == 0

    def test_unknown_user_rejected(self):
        registry = ModelRegistry(capacity=2)
        with pytest.raises(KeyError):
            registry.get(99)

    def test_lru_eviction_order(self):
        registry = ModelRegistry(capacity=2)
        for uid in (1, 2, 3):
            registry.register(uid, _model(uid))
        assert registry.stats.eviction_log == [1]  # least recently used
        assert registry.resident_ids == [2, 3]
        assert len(registry) == 3  # blobs are durable

    def test_access_refreshes_recency(self):
        registry = ModelRegistry(capacity=2)
        registry.register(1, _model(1))
        registry.register(2, _model(2))
        registry.get(1)  # 1 becomes most recent
        registry.register(3, _model(3))
        assert registry.stats.eviction_log == [2]

    def test_cold_load_rebuilds_identically(self):
        registry = ModelRegistry(capacity=1)
        original = _model(5, temperature=1e-3)
        registry.register(5, original)
        registry.register(6, _model(6))  # evicts 5
        reloaded = registry.get(5)
        assert registry.stats.cold_loads == 1
        assert registry.stats.simulated_load_seconds > 0
        assert reloaded is not original
        assert reloaded.privacy_temperature == original.privacy_temperature
        batch = np.random.default_rng(0).normal(size=(3, 2, 10))
        np.testing.assert_array_equal(
            reloaded.infer_logits(batch), original.infer_logits(batch)
        )

    def test_explicit_evict(self):
        registry = ModelRegistry(capacity=4)
        registry.register(1, _model(1))
        assert registry.evict(1)
        assert not registry.evict(1)
        assert 1 in registry  # blob survives
        registry.get(1)
        assert registry.stats.cold_loads == 1

    def test_reregister_replaces(self):
        registry = ModelRegistry(capacity=2)
        registry.register(1, _model(1))
        replacement = _model(2)
        registry.register(1, replacement)
        assert registry.get(1) is replacement
        assert len(registry) == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ModelRegistry(capacity=0)
        with pytest.raises(ValueError):
            ModelRegistry(storage_mbps=0)

    def test_unbounded_capacity_never_evicts(self):
        registry = ModelRegistry(capacity=None)
        for uid in range(20):
            registry.register(uid, _model(uid))
        assert registry.stats.evictions == 0
        assert registry.resident_ids == list(range(20))
