"""Unit tests for the cloud-side personalized-model registry."""

import numpy as np
import pytest

from repro.models import NextLocationModel
from repro.pelican import ModelRegistry


def _model(seed=0, temperature=1.0):
    model = NextLocationModel(
        input_width=10,
        num_locations=6,
        hidden_size=8,
        num_layers=1,
        dropout=0.0,
        rng=np.random.default_rng(seed),
    )
    model.set_privacy_temperature(temperature)
    model.eval()
    return model


class TestRegistry:
    def test_register_and_get_hit(self):
        registry = ModelRegistry(capacity=2)
        model = _model()
        registry.register(7, model)
        assert registry.get(7) is model
        assert registry.stats.hits == 1
        assert registry.stats.cold_loads == 0

    def test_unknown_user_rejected(self):
        registry = ModelRegistry(capacity=2)
        with pytest.raises(KeyError):
            registry.get(99)

    def test_lru_eviction_order(self):
        registry = ModelRegistry(capacity=2)
        for uid in (1, 2, 3):
            registry.register(uid, _model(uid))
        assert registry.stats.eviction_log == [1]  # least recently used
        assert registry.resident_ids == [2, 3]
        assert len(registry) == 3  # blobs are durable

    def test_access_refreshes_recency(self):
        registry = ModelRegistry(capacity=2)
        registry.register(1, _model(1))
        registry.register(2, _model(2))
        registry.get(1)  # 1 becomes most recent
        registry.register(3, _model(3))
        assert registry.stats.eviction_log == [2]

    def test_cold_load_rebuilds_identically(self):
        registry = ModelRegistry(capacity=1)
        original = _model(5, temperature=1e-3)
        registry.register(5, original)
        registry.register(6, _model(6))  # evicts 5
        reloaded = registry.get(5)
        assert registry.stats.cold_loads == 1
        assert registry.stats.simulated_load_seconds > 0
        assert reloaded is not original
        assert reloaded.privacy_temperature == original.privacy_temperature
        batch = np.random.default_rng(0).normal(size=(3, 2, 10))
        np.testing.assert_array_equal(
            reloaded.infer_logits(batch), original.infer_logits(batch)
        )

    def test_explicit_evict(self):
        registry = ModelRegistry(capacity=4)
        registry.register(1, _model(1))
        assert registry.evict(1)
        assert not registry.evict(1)
        assert 1 in registry  # blob survives
        registry.get(1)
        assert registry.stats.cold_loads == 1

    def test_reregister_replaces(self):
        registry = ModelRegistry(capacity=2)
        registry.register(1, _model(1))
        replacement = _model(2)
        registry.register(1, replacement)
        assert registry.get(1) is replacement
        assert len(registry) == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ModelRegistry(capacity=0)
        with pytest.raises(ValueError):
            ModelRegistry(storage_mbps=0)

    def test_unbounded_capacity_never_evicts(self):
        registry = ModelRegistry(capacity=None)
        for uid in range(20):
            registry.register(uid, _model(uid))
        assert registry.stats.evictions == 0
        assert registry.resident_ids == list(range(20))


class TestEvictionUnderQueryPressure:
    """Interleaved queries against more users than the cache can hold.

    A pure-python reference LRU tracks what the registry *should* do at
    every step; the registry must match it on cold-load counts, residency
    order, and eviction log — and every reloaded model must answer
    exactly like the original.
    """

    USERS = range(5)
    # Interleaving with re-touches, bursts, and a full rotation — the
    # shapes fleet serving produces (batch per model, LRU refresh per hit).
    PATTERN = [0, 1, 2, 0, 3, 1, 4, 0, 2, 3, 4, 4, 1, 0, 2, 1, 3, 0, 4, 2]

    def _run(self, capacity):
        registry = ModelRegistry(capacity=capacity)
        originals = {uid: _model(uid) for uid in self.USERS}
        for uid, model in originals.items():
            registry.register(uid, model)

        # Reference LRU over the same access sequence (registrations first).
        live: list = []
        expected_cold = 0
        expected_evictions = []
        for uid in self.USERS:
            live.append(uid)
            if len(live) > capacity:
                expected_evictions.append(live.pop(0))
        for uid in self.PATTERN:
            if uid in live:
                live.remove(uid)
            else:
                expected_cold += 1
            live.append(uid)
            if len(live) > capacity:
                expected_evictions.append(live.pop(0))
            registry.get(uid)
            assert registry.resident_ids == live  # LRU order, every step
        return registry, originals, expected_cold, expected_evictions

    @pytest.mark.parametrize("capacity", [1, 2, 3])
    def test_cold_loads_and_lru_order_match_reference(self, capacity):
        registry, _, expected_cold, expected_evictions = self._run(capacity)
        assert registry.stats.cold_loads == expected_cold
        assert registry.stats.eviction_log == expected_evictions
        assert registry.stats.hits == len(self.PATTERN) - expected_cold
        assert registry.stats.evictions == len(expected_evictions)

    def test_post_reload_parity_for_every_user(self):
        registry, originals, _, _ = self._run(capacity=2)
        batch = np.random.default_rng(1).normal(size=(3, 2, 10))
        for uid in self.USERS:
            np.testing.assert_array_equal(
                registry.get(uid).infer_logits(batch),
                originals[uid].infer_logits(batch),
            )

    def test_pressure_run_deterministic(self):
        a, _, _, _ = self._run(capacity=2)
        b, _, _, _ = self._run(capacity=2)
        assert a.stats.eviction_log == b.stats.eviction_log
        assert a.stats.simulated_load_seconds == b.stats.simulated_load_seconds
