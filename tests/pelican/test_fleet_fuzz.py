"""Property-based fuzz harness over the fleet event clock (DESIGN.md §8).

A seeded generator produces random :class:`FleetSchedule` workloads —
duplicate ticks, mixed ``k``, interleaved updates, out-of-order build
sequences — and every generated schedule must uphold the invariants the
fleet layer advertises:

* **batched/looped parity** — replaying the schedule on the event clock
  returns exactly what a one-query-at-a-time reference replay returns;
* **accounting conservation** — every query event is served and counted
  once, and the channel's O(1) running totals equal the sum of its
  transfer records (bytes charged == bytes recorded);
* **`serve_looped` neutrality** — the parity reference never perturbs
  the books;
* **same-seed determinism** — identical runs produce bit-identical
  responses and :meth:`FleetReport.signature`;
* **null-chaos identity** — the chaos layer with zero-probability faults
  is indistinguishable from no chaos layer;
* **audit-traffic conservation** (DESIGN.md §10) — schedules carrying
  interleaved adversary probe batches bill every probe exactly once:
  per-endpoint ledgers move by benign + probe counts, the fleet totals
  match, and the adversary attribution overlay equals exactly the probe
  rows;
* **resilience invariants** (DESIGN.md §11) — the null resilience policy
  is byte-identical to no policy at all; under an active policy every
  query is answered or counted shed (conservation); and same-seed runs
  are bit-deterministic end to end, breaker transition log included;
* **stacked-dispatch parity** (DESIGN.md §12) — serving through the
  cross-model stacked dispatch returns the exact same rankings as the
  per-model path (confidences to 1e-9 relative, no absolute slack),
  produces a bit-identical report signature, replays bit-identically on
  the same seed, and stays correct across lifecycle schedules whose
  onboards/updates/evictions must invalidate the weight-stack cache;
* **parallel-vs-serial identity** (DESIGN.md §13) — replaying a
  generated schedule on worker processes (``workers ∈ {2, 4}``, stacked
  on and off, shard-outage chaos so the failover hand-off runs) is
  bit-identical to the serial replay: responses, per-endpoint query
  ledgers, and ``totals_signature()`` all match exactly;
* **store-axis identity** (DESIGN.md §14) — replaying a lifecycle
  schedule over a memory-, disk-, or tiered-backed registry store
  returns bit-identical responses, per-endpoint ledgers, eviction logs,
  and ``FleetReport.signature()`` — stores are byte-transparent — and a
  2-shard outage run whose failover cold-loads come off the disk tier
  matches the in-memory run exactly;
* **generator/front-door invariants** (DESIGN.md §15) — random
  :class:`~repro.traffic.TrafficGenerator` configs compile to schedules
  whose front-door runs match a one-query-at-a-time replay of the
  admitted (rebatched) schedule exactly, conserve every query
  (answered + shed + rejected == generated), and rerun bit-identically
  on the same seed across the stacked × workers × store axes.

The schedule count is env-tunable so CI can smoke a subset::

    FLEET_FUZZ_SCHEDULES=10 pytest tests/pelican/test_fleet_fuzz.py
"""

import copy
import os

import numpy as np
import pytest

from repro.attacks import (
    AdversaryClass,
    AuditAdversary,
    AuditTarget,
    TimeBasedAttack,
    true_prior,
)
from repro.data import SpatialLevel
from repro.models import GeneralModelConfig, PersonalizationConfig
from repro.pelican import (
    ChaosFleet,
    ChaosPolicy,
    Cluster,
    DeploymentMode,
    EventKind,
    Fleet,
    FleetSchedule,
    Pelican,
    PelicanConfig,
    QueryRequest,
    ResiliencePolicy,
    chaos_policy,
    resilience_policy,
)

LEVEL = SpatialLevel.BUILDING
NUM_SCHEDULES = int(os.environ.get("FLEET_FUZZ_SCHEDULES", "50"))
#: Lifecycle (onboard-included) schedules are pricier — run a subset.
NUM_LIFECYCLE_SCHEDULES = max(3, NUM_SCHEDULES // 10)


# ----------------------------------------------------------------------
# Shared artifacts: train once, deepcopy per schedule.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def base(tiny_corpus):
    """(trained userless pelican, onboarded fleet, splits) — fuzz runs
    deepcopy these instead of retraining 50 times."""
    pelican = Pelican(
        tiny_corpus.spec(LEVEL),
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=16, epochs=2, patience=None),
            personalization=PersonalizationConfig(epochs=2, patience=None),
            privacy_temperature=1e-3,
            seed=3,
        ),
    )
    train, _ = tiny_corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    pelican.initial_training(train)
    splits = {
        uid: tiny_corpus.user_dataset(uid, LEVEL).split(0.8)
        for uid in tiny_corpus.personal_ids
    }
    pristine = copy.deepcopy(pelican)
    fleet = Fleet(pelican, registry_capacity=1)  # capacity 1: thrash the cache
    for i, uid in enumerate(tiny_corpus.personal_ids):
        mode = DeploymentMode.CLOUD if i % 2 == 0 else DeploymentMode.LOCAL
        fleet.onboard(uid, splits[uid][0], deployment=mode)
    return pristine, fleet, splits


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def generate_schedule(corpus, splits, seed, include_onboards=False):
    """One random workload; everything derives from ``seed``."""
    rng = np.random.default_rng((7, seed))
    schedule = FleetSchedule()
    users = list(corpus.personal_ids)
    onboard_time = {}
    if include_onboards:
        for uid in users:
            onboard_time[uid] = float(rng.uniform(0.0, 3.0))
            mode = DeploymentMode.CLOUD if rng.random() < 0.5 else DeploymentMode.LOCAL
            schedule.onboard(onboard_time[uid], uid, splits[uid][0], deployment=mode)
    num_events = int(rng.integers(5, 25))
    include_update = rng.random() < 0.25
    update_position = int(rng.integers(0, num_events)) if include_update else -1
    tick = max(onboard_time.values(), default=0.0)
    for position in range(num_events):
        # Duplicate ticks are the common case: coalesced serving batches.
        tick += float(rng.choice([0.0, 0.0, 0.0, 1.0, float(rng.uniform(0.0, 3.0))]))
        uid = int(rng.choice(users))
        if position == update_position:
            schedule.update(tick, uid, splits[uid][1])
            continue
        holdout = splits[uid][1]
        window = holdout.windows[int(rng.integers(0, len(holdout.windows)))]
        schedule.query(tick, uid, window.history, k=int(rng.integers(1, 5)))
    return schedule


def looped_replay(fleet, schedule):
    """Executable specification: one accounting-neutral query at a time,
    at the exact event-clock position each query would run at."""
    responses = []
    for event in schedule.ordered():
        if event.kind is EventKind.QUERY:
            [response] = fleet.serve_looped(
                [
                    QueryRequest(
                        user_id=event.user_id,
                        history=event.payload,
                        k=dict(event.options).get("k", 3),
                    )
                ]
            )
            responses.append((event, response))
        elif event.kind is EventKind.UPDATE:
            fleet.update(event.user_id, event.payload)
        elif event.kind is EventKind.ONBOARD:
            fleet.onboard(event.user_id, event.payload, **dict(event.options))
    return responses


def assert_channel_conserved(channel):
    """The O(1) running totals must equal the sum over transfer records."""
    assert sum(r.num_bytes for r in channel.records if r.direction == "up") == channel.bytes_up
    assert sum(r.num_bytes for r in channel.records if r.direction == "down") == channel.bytes_down
    assert sum(r.count for r in channel.records) == channel.transfer_count
    np.testing.assert_allclose(
        sum(r.simulated_seconds for r in channel.records),
        channel.total_simulated_seconds,
    )


def assert_parity(responses, reference):
    assert len(responses) == len(reference)
    for response, (event, looped) in zip(responses, reference):
        assert response.user_id == event.user_id
        assert (response.time, response.seq) == (event.time, event.seq)
        assert [loc for loc, _ in response.top_k] == [loc for loc, _ in looped.top_k]
        np.testing.assert_allclose(
            [conf for _, conf in response.top_k],
            [conf for _, conf in looped.top_k],
            rtol=1e-9,
            atol=0.0,
        )


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(NUM_SCHEDULES))
def test_generated_schedule_invariants(base, tiny_corpus, seed):
    _, fleet0, splits = base
    schedule = generate_schedule(tiny_corpus, splits, seed)
    events = schedule.ordered()
    num_queries = sum(1 for e in events if e.kind is EventKind.QUERY)
    has_update = any(e.kind is EventKind.UPDATE for e in events)

    # --- the batched event-clock run ----------------------------------
    fleet = copy.deepcopy(fleet0)
    responses = fleet.run(schedule)
    assert len(responses) == num_queries
    assert fleet.report.queries - fleet0.report.queries == num_queries
    assert_channel_conserved(fleet.pelican.channel)
    # Every query exchange was charged exactly once: per-endpoint query
    # counters moved by exactly the events each user issued.  An UPDATE
    # redeploys a fresh endpoint but the user's QueryStats ledger carries
    # across the redeploy (``Pelican.update_user``), so this holds for
    # updated users too.
    for uid, user in fleet.pelican.users.items():
        issued = sum(
            1 for e in events if e.kind is EventKind.QUERY and e.user_id == uid
        )
        baseline = fleet0.pelican.users[uid].endpoint.stats.queries
        assert user.endpoint.stats.queries - baseline == issued

    # --- parity against the one-query-at-a-time specification ---------
    reference_fleet = copy.deepcopy(fleet0)
    reference = looped_replay(reference_fleet, schedule)
    assert_parity(responses, reference)

    # --- serve_looped neutrality ---------------------------------------
    if not has_update:
        # A pure-query reference replay must leave the books untouched.
        assert (
            reference_fleet.report.signature() == fleet0.report.signature()
        )
        assert reference_fleet.pelican.channel.checkpoint() == (
            fleet0.pelican.channel.checkpoint()
        )

    # --- same seed, same schedule => bit-identical run -----------------
    rerun_fleet = copy.deepcopy(fleet0)
    rerun = rerun_fleet.run(schedule)
    assert rerun == responses  # frozen dataclasses: bit-exact confidences
    assert rerun_fleet.report.signature() == fleet.report.signature()


@pytest.fixture(scope="module")
def probe_pool(base, tiny_corpus):
    """Pre-planned probe batches per user, reused across fuzz schedules."""
    _, fleet, splits = base
    adversary = AuditAdversary(
        TimeBasedAttack(), AdversaryClass.A1, max_instances=2
    )
    spec = fleet.pelican.spec
    return {
        uid: adversary.probes_for(
            spec,
            AuditTarget(
                user_id=uid,
                attack_windows=splits[uid][1],
                prior=true_prior(splits[uid][0]),
            ),
        )
        for uid in tiny_corpus.personal_ids
    }


@pytest.mark.parametrize("seed", range(0, NUM_SCHEDULES, 5))
def test_generated_audit_schedule_invariants(base, tiny_corpus, probe_pool, seed):
    """Audit probe traffic interleaved with benign events conserves every
    per-endpoint and fleet-level query ledger (DESIGN.md §10)."""
    _, fleet0, splits = base
    schedule = generate_schedule(tiny_corpus, splits, 5000 + seed)
    rng = np.random.default_rng((13, seed))
    ticks = sorted({e.time for e in schedule.ordered()}) or [0.0]
    probe_rows = {uid: 0 for uid in tiny_corpus.personal_ids}
    num_probe_events = 0
    for uid, batches in probe_pool.items():
        for batch in batches:
            if rng.random() < 0.75:
                schedule.probe(float(rng.choice(ticks)), uid, batch)
                probe_rows[uid] += batch.num_probes
                num_probe_events += 1
    events = schedule.ordered()
    num_queries = sum(
        1
        for e in events
        if e.kind is EventKind.QUERY and isinstance(e.payload, tuple)
    )
    total_probe_rows = sum(probe_rows.values())

    fleet = copy.deepcopy(fleet0)
    responses = fleet.run(schedule)
    assert len(responses) == num_queries + num_probe_events
    # Probe responses carry confidences (one per probe row), benign ones
    # carry rankings — never both.
    served_rows = sum(
        len(r.confidences) for r in responses if r.confidences is not None
    )
    assert served_rows == total_probe_rows
    assert all(r.top_k for r in responses if r.confidences is None)

    # Fleet totals: every benign query and every probe row exactly once;
    # the adversary overlay holds exactly the probe rows.
    assert (
        fleet.report.queries - fleet0.report.queries
        == num_queries + total_probe_rows
    )
    assert (
        fleet.report.adversary_queries - fleet0.report.adversary_queries
        == total_probe_rows
    )
    assert_channel_conserved(fleet.pelican.channel)

    # Per-endpoint conservation, probes included.
    for uid, user in fleet.pelican.users.items():
        issued = sum(
            1
            for e in events
            if e.kind is EventKind.QUERY
            and e.user_id == uid
            and isinstance(e.payload, tuple)
        )
        baseline = fleet0.pelican.users[uid].endpoint.stats.queries
        assert user.endpoint.stats.queries - baseline == issued + probe_rows[uid]

    # Same seed, same schedule => bit-identical run (confidences included).
    rerun_fleet = copy.deepcopy(fleet0)
    assert rerun_fleet.run(schedule) == responses
    assert rerun_fleet.report.signature() == fleet.report.signature()


@pytest.mark.parametrize("seed", range(0, NUM_SCHEDULES, 5))
def test_null_chaos_identical_to_chaos_off(base, tiny_corpus, seed):
    """chaos-on with zero-probability faults == chaos-off, per schedule."""
    pristine, _, splits = base
    schedule = generate_schedule(tiny_corpus, splits, seed, include_onboards=True)
    plain = Fleet(copy.deepcopy(pristine), registry_capacity=1)
    chaotic = ChaosFleet(
        copy.deepcopy(pristine), ChaosPolicy(), registry_capacity=1
    )
    assert plain.run(schedule) == chaotic.run(schedule)
    assert plain.report.signature() == chaotic.report.signature()
    assert not any(chaotic.chaos.signature().values())


@pytest.mark.parametrize("seed", range(0, NUM_SCHEDULES, 5))
def test_null_resilience_identical_to_resilience_off(base, tiny_corpus, seed):
    """The null resilience policy over real chaos == no policy at all:
    same responses, same signature, same signature *key set*."""
    pristine, _, splits = base
    schedule = generate_schedule(tiny_corpus, splits, seed, include_onboards=True)
    policy = chaos_policy("hostile", seed=seed)
    bare = ChaosFleet(copy.deepcopy(pristine), policy, registry_capacity=1)
    nulled = ChaosFleet(
        copy.deepcopy(pristine),
        policy,
        registry_capacity=1,
        resilience=ResiliencePolicy(),
    )
    assert bare.run(schedule) == nulled.run(schedule)
    assert bare.signature() == nulled.signature()
    assert not any(k.startswith("resilience_") for k in nulled.signature())


@pytest.mark.parametrize("seed", range(0, NUM_SCHEDULES, 5))
def test_resilience_conservation_and_determinism(base, tiny_corpus, seed):
    """Under an active policy every query is answered or counted shed,
    and same-seed reruns are bit-identical — backoff jitter included."""
    pristine, _, splits = base
    schedule = generate_schedule(tiny_corpus, splits, 2000 + seed, include_onboards=True)
    num_queries = sum(
        1 for e in schedule.ordered() if e.kind is EventKind.QUERY
    )

    def run():
        fleet = ChaosFleet(
            copy.deepcopy(pristine),
            chaos_policy("hostile", seed=seed),
            registry_capacity=1,
            resilience=resilience_policy("default", seed=seed),
        )
        return fleet.run(schedule), fleet

    responses, fleet = run()
    stats = fleet.resilience_stats
    assert len(responses) + stats.shed_queries == num_queries

    rerun, rerun_fleet = run()
    assert rerun == responses
    assert rerun_fleet.resilience_stats.signature() == stats.signature()
    assert rerun_fleet.signature() == fleet.signature()


@pytest.mark.parametrize("seed", range(0, NUM_SCHEDULES, 10))
def test_cluster_breaker_log_determinism(base, tiny_corpus, seed):
    """A sharded cluster under blackout chaos replays its breaker
    transition log bit-identically across same-seed runs."""
    pristine, _, splits = base
    schedule = generate_schedule(tiny_corpus, splits, 3000 + seed, include_onboards=True)

    def run():
        cluster = Cluster.from_trained(
            copy.deepcopy(pristine),
            num_shards=2,
            registry_capacity=1,
            policy=chaos_policy("blackout", seed=seed),
            resilience=resilience_policy("default", seed=seed),
        )
        return cluster.run(schedule), cluster

    responses, cluster = run()
    rerun, rerun_cluster = run()
    assert rerun == responses
    assert rerun_cluster.resilience_stats.breaker_log == (
        cluster.resilience_stats.breaker_log
    )
    assert rerun_cluster.resilience_stats.signature() == (
        cluster.resilience_stats.signature()
    )
    assert rerun_cluster.signature() == cluster.signature()


def assert_stacked_parity(stacked_responses, plain_responses):
    """Exact rankings, 1e-9-relative confidences, matched identity fields.

    The stacked kernel schedules the same arithmetic through differently
    blocked GEMMs, so confidences may differ in the last few ulps — but
    rankings must be *exactly* the per-model path's, and probe
    confidences ride the per-model path untouched, so they compare
    bit-exact.
    """
    assert len(stacked_responses) == len(plain_responses)
    for stacked, plain in zip(stacked_responses, plain_responses):
        assert (stacked.user_id, stacked.time, stacked.seq) == (
            plain.user_id,
            plain.time,
            plain.seq,
        )
        assert stacked.confidences == plain.confidences  # probes: bit-exact
        assert [loc for loc, _ in stacked.top_k] == [loc for loc, _ in plain.top_k]
        np.testing.assert_allclose(
            [conf for _, conf in stacked.top_k],
            [conf for _, conf in plain.top_k],
            rtol=1e-9,
            atol=0.0,
        )


@pytest.mark.parametrize("seed", range(NUM_SCHEDULES))
def test_stacked_schedule_differential_parity(base, tiny_corpus, seed):
    """Stacked vs per-model dispatch over generated schedules: exact
    rankings, 1e-9 confidences, bit-identical signatures and reruns."""
    _, fleet0, splits = base
    schedule = generate_schedule(tiny_corpus, splits, seed)

    plain = copy.deepcopy(fleet0)
    plain_responses = plain.run(schedule)

    stacked = copy.deepcopy(fleet0)
    stacked.stacked = True
    responses = stacked.run(schedule)

    assert_stacked_parity(responses, plain_responses)
    # The books never see the strategy change: per-group MACs are booked
    # at the per-model-equivalent integer rate, registry resolution and
    # channel billing run in the identical order.
    assert stacked.report.signature() == plain.report.signature()
    assert_channel_conserved(stacked.pelican.channel)

    rerun = copy.deepcopy(fleet0)
    rerun.stacked = True
    assert rerun.run(schedule) == responses  # same seed => bit-identical
    assert rerun.report.signature() == stacked.report.signature()


@pytest.mark.parametrize("seed", range(0, NUM_SCHEDULES, 5))
def test_stacked_audit_schedule_parity(base, tiny_corpus, probe_pool, seed):
    """Probe traffic interleaved with stacked serving: probes bypass the
    stack (bit-exact confidences) and every ledger still conserves."""
    _, fleet0, splits = base
    schedule = generate_schedule(tiny_corpus, splits, 5000 + seed)
    rng = np.random.default_rng((13, seed))
    ticks = sorted({e.time for e in schedule.ordered()}) or [0.0]
    for uid, batches in probe_pool.items():
        for batch in batches:
            if rng.random() < 0.75:
                schedule.probe(float(rng.choice(ticks)), uid, batch)

    plain = copy.deepcopy(fleet0)
    plain_responses = plain.run(schedule)

    stacked = copy.deepcopy(fleet0)
    stacked.stacked = True
    responses = stacked.run(schedule)

    assert_stacked_parity(responses, plain_responses)
    assert stacked.report.signature() == plain.report.signature()
    assert_channel_conserved(stacked.pelican.channel)
    for uid, user in stacked.pelican.users.items():
        plain_user = plain.pelican.users[uid]
        assert user.endpoint.stats.queries == plain_user.endpoint.stats.queries


@pytest.mark.parametrize("seed", range(NUM_LIFECYCLE_SCHEDULES))
def test_stacked_lifecycle_schedule_invalidation(base, tiny_corpus, seed):
    """Lifecycle schedules under stacking: every onboard, update, and
    capacity-1 LRU eviction must invalidate the weight-stack rows, or a
    post-update query would answer from pre-update weights and break
    ranking parity here."""
    pristine, _, splits = base
    schedule = generate_schedule(tiny_corpus, splits, 1000 + seed, include_onboards=True)

    plain = Fleet(copy.deepcopy(pristine), registry_capacity=1)
    plain_responses = plain.run(schedule)

    stacked = Fleet(copy.deepcopy(pristine), registry_capacity=1, stacked=True)
    responses = stacked.run(schedule)

    assert_stacked_parity(responses, plain_responses)
    assert stacked.report.signature() == plain.report.signature()

    rerun = Fleet(copy.deepcopy(pristine), registry_capacity=1, stacked=True)
    assert rerun.run(schedule) == responses
    assert rerun.report.signature() == stacked.report.signature()


@pytest.mark.parametrize("stacked", [False, True], ids=["plain", "stacked"])
@pytest.mark.parametrize("seed", range(NUM_LIFECYCLE_SCHEDULES))
def test_parallel_cluster_differential_sweep(base, tiny_corpus, seed, stacked):
    """Worker-pool replay vs serial replay over generated lifecycle
    schedules under shard-outage chaos (DESIGN.md §13): responses,
    per-endpoint ledgers, and ``totals_signature()`` must all be
    bit-identical at every worker count."""
    from repro.pelican import totals_signature

    pristine, _, splits = base
    schedule = generate_schedule(
        tiny_corpus, splits, 4000 + seed, include_onboards=True
    )

    def run(workers):
        cluster = Cluster.from_trained(
            copy.deepcopy(pristine),
            num_shards=4,
            registry_capacity=1,
            policy=chaos_policy("shard_outage", seed=seed),
            stacked=stacked,
            workers=workers,
        )
        try:
            responses = cluster.run(schedule)
            ledgers = {
                uid: (
                    user.endpoint.stats.queries,
                    user.endpoint.stats.simulated_network_seconds,
                )
                for uid, user in cluster.users.items()
            }
            return responses, ledgers, totals_signature(cluster.signature())
        finally:
            cluster.close()

    serial = run(0)
    for workers in (2, 4):
        assert run(workers) == serial


@pytest.mark.parametrize("seed", range(NUM_LIFECYCLE_SCHEDULES))
def test_store_axis_differential_sweep(base, tiny_corpus, seed, tmp_path):
    """Memory vs disk vs tiered registry stores over generated lifecycle
    schedules (DESIGN.md §14): stores are byte-transparent, so responses,
    per-endpoint ledgers, eviction logs, and ``FleetReport.signature()``
    must all be bit-identical across the store axis."""
    from repro.pelican import make_blob_store

    pristine, _, splits = base
    schedule = generate_schedule(
        tiny_corpus, splits, 6000 + seed, include_onboards=True
    )

    def run(kind):
        store = make_blob_store(kind, directory=tmp_path / f"{kind}-{seed}")
        fleet = Fleet(
            copy.deepcopy(pristine), registry_capacity=1, registry_store=store
        )
        try:
            responses = fleet.run(schedule)
            ledgers = {
                uid: (
                    user.endpoint.stats.queries,
                    user.endpoint.stats.simulated_network_seconds,
                )
                for uid, user in fleet.pelican.users.items()
            }
            evictions = tuple(fleet.registry.stats.eviction_log)
            return responses, ledgers, evictions, fleet.report.signature()
        finally:
            store.close()

    reference = run("memory")
    for kind in ("disk", "tiered"):
        assert run(kind) == reference


@pytest.mark.parametrize("seed", range(min(NUM_LIFECYCLE_SCHEDULES, 7)))
def test_store_disk_failover_cold_loads(base, tiny_corpus, seed, tmp_path):
    """A 2-shard cluster under shard-outage chaos fails queries over to
    the surviving shard, whose registry cold-loads the checkpoint off the
    cluster-wide durable store (DESIGN.md §14).  With that store on the
    disk tier the run must stay bit-identical to the in-memory run —
    responses and ``totals_signature()`` — while actually exercising
    failover cold loads."""
    from repro.pelican import DiskBlobStore, totals_signature

    pristine, _, splits = base
    # All-cloud onboards + round-robin queries over a wide tick span:
    # every user's checkpoint lives in the durable store, and the span
    # (≈20 time units vs. outage rate 1.5 / duration 25) makes failover
    # reads off the durable tier a certainty — verified for the seed
    # window [0, 7) this test parametrizes over.
    rng = np.random.default_rng((29, seed))
    schedule = FleetSchedule()
    users = list(tiny_corpus.personal_ids)
    for uid in users:
        schedule.onboard(
            float(rng.uniform(0.0, 2.0)),
            uid,
            splits[uid][0],
            deployment=DeploymentMode.CLOUD,
        )
    tick = 2.0
    for position in range(10 * len(users)):
        tick += float(rng.choice([0.0, 1.0, 2.0]))
        uid = users[position % len(users)]
        holdout = splits[uid][1]
        window = holdout.windows[int(rng.integers(0, len(holdout.windows)))]
        schedule.query(tick, uid, window.history, k=int(rng.integers(1, 5)))

    def run(store):
        cluster = Cluster.from_trained(
            copy.deepcopy(pristine),
            num_shards=2,
            registry_capacity=1,
            policy=chaos_policy("shard_outage", seed=seed),
            store=store,
        )
        try:
            responses = cluster.run(schedule)
            signature = totals_signature(cluster.signature())
            return responses, signature
        finally:
            cluster.close()

    memory = run(None)
    disk = run(DiskBlobStore(tmp_path / f"cluster-{seed}"))
    assert disk == memory
    # The failover shard's registry starts cold, so failed-over queries
    # must have cold-loaded their checkpoints off the durable tier.
    assert memory[1]["registry_cold_loads"] > 0


@pytest.mark.parametrize("seed", range(NUM_LIFECYCLE_SCHEDULES))
def test_generated_lifecycle_schedule_invariants(base, tiny_corpus, seed):
    """Full-lifecycle fuzz: onboards land mid-schedule too."""
    pristine, _, splits = base
    schedule = generate_schedule(tiny_corpus, splits, 1000 + seed, include_onboards=True)
    events = schedule.ordered()
    num_queries = sum(1 for e in events if e.kind is EventKind.QUERY)

    fleet = Fleet(copy.deepcopy(pristine), registry_capacity=1)
    responses = fleet.run(schedule)
    assert len(responses) == num_queries
    assert fleet.report.onboards == len(tiny_corpus.personal_ids)
    assert_channel_conserved(fleet.pelican.channel)

    reference_fleet = Fleet(copy.deepcopy(pristine), registry_capacity=1)
    assert_parity(responses, looped_replay(reference_fleet, schedule))

    rerun_fleet = Fleet(copy.deepcopy(pristine), registry_capacity=1)
    assert rerun_fleet.run(schedule) == responses
    assert rerun_fleet.report.signature() == fleet.report.signature()


# ----------------------------------------------------------------------
# Generator axis: random traffic configs through the front door
# ----------------------------------------------------------------------
def generate_traffic_run(splits, seed):
    """One random (compiled schedule, admission config); everything —
    regime knobs, flash crowds, churn, micro-batch window — derives from
    ``seed``."""
    from repro.pelican import ServiceConfig
    from repro.traffic import (
        FlashCrowd,
        RegimeTraffic,
        TrafficConfig,
        TrafficGenerator,
    )

    rng = np.random.default_rng((37, seed))
    regimes = tuple(
        RegimeTraffic(
            regime=name,
            rate=float(rng.uniform(0.02, 0.2)),
            diurnal_amplitude=float(rng.choice([0.0, rng.uniform(0.0, 0.9)])),
            diurnal_period=float(rng.uniform(10.0, 40.0)),
        )
        for name in ["campus", "downtown"][: int(rng.integers(1, 3))]
    )
    flash_crowds = ()
    if rng.random() < 0.5:
        flash_crowds = (
            FlashCrowd(
                start=float(rng.uniform(0.0, 20.0)),
                duration=float(rng.uniform(3.0, 10.0)),
                rate=float(rng.uniform(0.2, 0.8)),
            ),
        )
    config = TrafficConfig(
        seed=int(rng.integers(0, 2**16)),
        horizon=float(rng.uniform(20.0, 40.0)),
        regimes=regimes,
        flash_crowds=flash_crowds,
        devices_per_user=int(rng.integers(1, 4)),
        include_onboards=True,
        onboard_spacing=float(rng.uniform(2.0, 6.0)),
        update_prob=float(rng.uniform(0.0, 0.6)),
        k=int(rng.integers(1, 5)),
    )
    train_data = {uid: train for uid, (train, _) in splits.items()}
    schedule = TrafficGenerator(config).compile(
        {
            uid: [w.history for w in holdout.windows]
            for uid, (_, holdout) in splits.items()
        },
        onboard_data=train_data,
        update_data=train_data,
    )
    service = ServiceConfig(
        window=float(rng.uniform(0.0, 0.4)),
        max_batch=int(rng.integers(1, 9)),
        queue_capacity=None if rng.random() < 0.5 else int(rng.integers(8, 64)),
    )
    return schedule, service


@pytest.mark.parametrize("seed", range(NUM_LIFECYCLE_SCHEDULES))
def test_generator_front_door_parity_and_conservation(base, seed):
    """A generated workload through the front door equals a looped
    replay of the admitted (rebatched) schedule, and every generated
    query is answered, shed, or rejected — nothing vanishes."""
    from repro.pelican import ServiceFrontDoor

    pristine, _, splits = base
    schedule, service = generate_traffic_run(splits, seed)
    num_queries = sum(1 for e in schedule.ordered() if e.kind is EventKind.QUERY)

    front = ServiceFrontDoor(
        Fleet(copy.deepcopy(pristine), registry_capacity=1), service
    )
    responses = front.run(schedule)
    # Conservation: the front door on a resilience-free fleet never
    # sheds, so answered + rejected must cover the workload.
    assert front.stats.generated == num_queries
    assert front.book.answered + front.shed + front.stats.rejected == num_queries
    assert front.shed == 0
    assert len(responses) == front.book.answered

    # Parity: admission is deterministic, so an identically-configured
    # door rebatches to the same schedule — whose one-query-at-a-time
    # replay must match the batched front-door run exactly.
    reference_front = ServiceFrontDoor(
        Fleet(copy.deepcopy(pristine), registry_capacity=1), service
    )
    admitted = reference_front.admit(schedule)
    reference = looped_replay(reference_front.fleet, admitted)
    assert_parity(responses, reference)


@pytest.mark.parametrize("store_kind", ["memory", "disk", "tiered"])
@pytest.mark.parametrize("seed", range(NUM_LIFECYCLE_SCHEDULES))
def test_generator_store_axis_determinism(base, seed, store_kind, tmp_path):
    """Front-door runs of a generated workload are bit-identical on
    rerun, and byte-transparent across the registry-store axis."""
    from repro.pelican import ServiceFrontDoor, make_blob_store

    pristine, _, splits = base
    schedule, service = generate_traffic_run(splits, seed)

    def run(kind, tag):
        store = make_blob_store(kind, directory=tmp_path / f"{kind}-{tag}")
        fleet = Fleet(
            copy.deepcopy(pristine), registry_capacity=1, registry_store=store
        )
        front = ServiceFrontDoor(fleet, service)
        try:
            return front.run(schedule), front.signature()
        finally:
            store.close()

    reference = run("memory", "a")
    assert reference[1]["service_answered"] > 0
    assert run(store_kind, "b") == reference


@pytest.mark.parametrize("stacked", [False, True], ids=["plain", "stacked"])
@pytest.mark.parametrize("seed", range(NUM_LIFECYCLE_SCHEDULES))
def test_generator_stacked_axis_determinism(base, seed, stacked):
    """Same-seed front-door reruns are bit-identical with stacked
    dispatch on or off, and the stacked run keeps exact ranking parity
    (and an identical signature) with the per-model path."""
    from repro.pelican import ServiceFrontDoor

    pristine, _, splits = base
    schedule, service = generate_traffic_run(splits, seed)

    def run(use_stacked):
        fleet = Fleet(
            copy.deepcopy(pristine), registry_capacity=1, stacked=use_stacked
        )
        front = ServiceFrontDoor(fleet, service)
        return front.run(schedule), front.signature()

    responses, signature = run(stacked)
    rerun_responses, rerun_signature = run(stacked)
    assert rerun_responses == responses
    assert rerun_signature == signature
    if stacked:
        plain_responses, plain_signature = run(False)
        assert_stacked_parity(responses, plain_responses)
        assert signature == plain_signature


@pytest.mark.parametrize("seed", range(min(NUM_LIFECYCLE_SCHEDULES, 3)))
def test_generator_workers_axis_determinism(base, seed):
    """A generated workload through the front door of a 2-shard cluster
    is bit-identical between serial and worker-process serving."""
    from repro.pelican import ServiceFrontDoor, totals_signature

    pristine, _, splits = base
    schedule, service = generate_traffic_run(splits, seed)

    def run(workers):
        cluster = Cluster.from_trained(
            copy.deepcopy(pristine),
            num_shards=2,
            registry_capacity=1,
            workers=workers,
        )
        front = ServiceFrontDoor(cluster, service)
        try:
            return front.run(schedule), totals_signature(front.signature())
        finally:
            cluster.close()

    serial = run(0)
    assert serial[1]["service_answered"] > 0
    assert run(2) == serial


@pytest.mark.parametrize("seed", range(min(NUM_LIFECYCLE_SCHEDULES, 3)))
def test_generator_chaos_resilience_conservation(base, seed):
    """Generated traffic under hostile chaos + an active resilience
    policy: front-door sheds and chaos sheds land in one counter, the
    conservation identity holds, and reruns are bit-identical."""
    from repro.pelican import ServiceFrontDoor

    pristine, _, splits = base
    schedule, service = generate_traffic_run(splits, seed)
    num_queries = sum(1 for e in schedule.ordered() if e.kind is EventKind.QUERY)

    def run():
        fleet = ChaosFleet(
            copy.deepcopy(pristine),
            chaos_policy("hostile", seed=seed),
            registry_capacity=1,
            resilience=resilience_policy("default", seed=seed),
        )
        front = ServiceFrontDoor(fleet, service)
        return front.run(schedule), front

    responses, front = run()
    assert front.stats.generated == num_queries
    assert (
        front.book.answered + front.shed + front.stats.rejected == num_queries
    )
    assert front.shed == front.fleet.resilience_stats.shed_queries

    rerun_responses, rerun_front = run()
    assert rerun_responses == responses
    assert rerun_front.signature() == front.signature()
