"""Unit tests for the alternative output-perturbation defenses."""

import numpy as np
import pytest

from repro.data import SpatialLevel
from repro.models import NextLocationPredictor
from repro.pelican import GaussianNoiseDefense, RoundingDefense, TopKOnlyDefense


@pytest.fixture
def predictor(tiny_corpus, tiny_general):
    general, _, _ = tiny_general
    return NextLocationPredictor(general, tiny_corpus.spec(SpatialLevel.BUILDING))


@pytest.fixture
def history(tiny_corpus):
    uid = tiny_corpus.personal_ids[0]
    return tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).windows[0].history


class TestGaussianNoise:
    def test_outputs_remain_distributions(self, predictor, history):
        defense = GaussianNoiseDefense(predictor, sigma=0.1, seed=0)
        probs = defense.confidences(history)
        np.testing.assert_allclose(probs.sum(), 1.0, atol=1e-9)
        assert np.all(probs >= 0)

    def test_zero_sigma_is_identity(self, predictor, history):
        defense = GaussianNoiseDefense(predictor, sigma=0.0)
        np.testing.assert_allclose(
            defense.confidences(history), predictor.confidences(history), atol=1e-12
        )

    def test_noise_perturbs_ranking_at_high_sigma(self, predictor, history):
        clean = predictor.confidences(history)
        defense = GaussianNoiseDefense(predictor, sigma=1.0, seed=3)
        noisy = defense.confidences(history)
        assert not np.allclose(clean, noisy)

    def test_negative_sigma_rejected(self, predictor):
        with pytest.raises(ValueError):
            GaussianNoiseDefense(predictor, sigma=-0.1)


class TestRounding:
    def test_quantizes(self, predictor, history):
        defense = RoundingDefense(predictor, decimals=1)
        probs = defense.confidences(history)
        scaled = probs * probs.sum()
        # Values derive from 1-decimal quantities, then renormalized.
        np.testing.assert_allclose(probs.sum(), 1.0, atol=1e-9)
        assert (np.round(defense._perturb(predictor.confidences(history)[None, :]), 9) >= 0).all()

    def test_aggressive_rounding_creates_ties(self, predictor, history):
        defense = RoundingDefense(predictor, decimals=1)
        probs = defense.confidences(history)
        values, counts = np.unique(probs.round(9), return_counts=True)
        assert counts.max() >= 2  # the tail collapses to equal values

    def test_all_zero_row_falls_back_to_uniform(self, predictor):
        defense = RoundingDefense(predictor, decimals=2)
        nearly_uniform = np.full((1, 200), 1.0 / 200)
        out = defense._perturb(nearly_uniform)
        np.testing.assert_allclose(out.sum(), 1.0)

    def test_negative_decimals_rejected(self, predictor):
        with pytest.raises(ValueError):
            RoundingDefense(predictor, decimals=-1)


class TestTopKOnly:
    def test_tail_zeroed(self, predictor, history):
        defense = TopKOnlyDefense(predictor, k=3)
        probs = defense.confidences(history)
        assert (probs > 0).sum() <= 3
        np.testing.assert_allclose(probs.sum(), 1.0, atol=1e-9)

    def test_top_k_order_preserved(self, predictor, history):
        defense = TopKOnlyDefense(predictor, k=3)
        clean_top = [loc for loc, _ in predictor.top_k(history, 3)]
        defended_top = [loc for loc, _ in defense.top_k(history, 3)]
        assert set(clean_top) == set(defended_top)

    def test_service_accuracy_within_k_unchanged(self, predictor, tiny_corpus):
        uid = tiny_corpus.personal_ids[0]
        _, test = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).split(0.8)
        X, y = test.encode()
        defense = TopKOnlyDefense(predictor, k=3)
        assert defense.top_k_accuracy(X, y, 3) == predictor.top_k_accuracy(X, y, 3)

    def test_invalid_k_rejected(self, predictor):
        with pytest.raises(ValueError):
            TopKOnlyDefense(predictor, k=0)


class TestAttackCompatibility:
    def test_time_based_attack_runs_through_defense(self, predictor, tiny_corpus):
        from repro.attacks import AdversaryClass, TimeBasedAttack, attack_user, uniform_prior

        uid = tiny_corpus.personal_ids[0]
        _, test = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).split(0.8)
        defense = GaussianNoiseDefense(predictor, sigma=0.05)
        prior = uniform_prior(predictor.spec.num_locations)
        result = attack_user(
            TimeBasedAttack(), defense, test, AdversaryClass.A1, prior, max_instances=3
        )
        assert len(result.outputs) == 3
