"""Integration test: the paper's full story on one small corpus.

corpus -> cloud general training -> device personalization -> deployment ->
inversion attack -> Pelican defense.  Asserts the qualitative claims:

1. personalization beats the general model for the user;
2. the inversion attack substantially beats random guessing;
3. the privacy layer does not change service top-k accuracy;
4. the privacy layer reduces attack accuracy (leakage).
"""

import numpy as np
import pytest

from repro.attacks import (
    AdversaryClass,
    PriorMethod,
    TimeBasedAttack,
    attack_user,
    build_prior,
    prune_locations,
)
from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.models import (
    GeneralModelConfig,
    NextLocationPredictor,
    PersonalizationConfig,
    PersonalizationMethod,
)
from repro.pelican import DeploymentMode, Pelican, PelicanConfig, leakage_reduction


@pytest.fixture(scope="module")
def world():
    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=25, num_contributors=8, num_personal_users=2, num_days=42, seed=21
        )
    )
    spec = corpus.spec(SpatialLevel.BUILDING)
    system = Pelican(
        spec,
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=32, epochs=10, patience=4),
            personalization=PersonalizationConfig(epochs=12, patience=5),
            privacy_temperature=1e-3,
            deployment=DeploymentMode.LOCAL,
        ),
    )
    train, test = corpus.contributor_dataset(SpatialLevel.BUILDING).split_by_user(0.8)
    system.initial_training(train)
    uid = corpus.personal_ids[0]
    user_train, user_test = corpus.user_dataset(uid, SpatialLevel.BUILDING).split(0.8)
    user = system.onboard_user(uid, user_train)
    return corpus, spec, system, user, user_train, user_test


class TestPersonalizationWins:
    def test_personal_beats_general_for_user(self, world):
        corpus, spec, system, user, user_train, user_test = world
        X, y = user_test.encode()
        general = NextLocationPredictor(system.cloud.general_model, spec)
        personal = user.endpoint.predictor
        assert personal.top_k_accuracy(X, y, 3) >= general.top_k_accuracy(X, y, 3)


class TestAttackAndDefense:
    @pytest.fixture(scope="class")
    def attack_results(self, world):
        corpus, spec, system, user, user_train, user_test = world
        prior = build_prior(PriorMethod.TRUE, spec.num_locations, train_dataset=user_train)

        defended_pred = user.endpoint.predictor  # deployed with privacy layer
        undefended_model = defended_pred.model.copy(np.random.default_rng(0))
        undefended_model.set_privacy_temperature(1.0)
        undefended_pred = NextLocationPredictor(undefended_model, spec)

        def run(predictor):
            pruned = prune_locations(predictor, user_test)
            attack = TimeBasedAttack(candidate_locations=pruned)
            return attack_user(
                attack, predictor, user_test, AdversaryClass.A1, prior, max_instances=20
            )

        return run(undefended_pred), run(defended_pred), spec

    def test_attack_beats_random_guessing(self, attack_results):
        undefended, _, spec = attack_results
        random_top3 = 3.0 / spec.num_locations
        assert undefended.accuracy(3) > 2 * random_top3

    def test_defense_reduces_leakage(self, attack_results):
        undefended, defended, _ = attack_results
        mean_reduction = np.mean(
            [
                leakage_reduction(undefended.accuracy(k), defended.accuracy(k))
                for k in (2, 3, 4, 5)
            ]
        )
        assert mean_reduction > 0.0

    def test_service_accuracy_unchanged_by_defense(self, world):
        corpus, spec, system, user, user_train, user_test = world
        X, y = user_test.encode()
        defended = user.endpoint.predictor
        undefended_model = defended.model.copy(np.random.default_rng(0))
        undefended_model.set_privacy_temperature(1.0)
        undefended = NextLocationPredictor(undefended_model, spec)
        for k in (1, 2, 3):
            assert defended.top_k_accuracy(X, y, k) == undefended.top_k_accuracy(X, y, k)


class TestModelUpdates:
    def test_update_cycle_keeps_service_running(self, world):
        corpus, spec, system, user, user_train, user_test = world
        uid = user.user_id
        refreshed = system.update_user(uid, user_test)
        top = system.query(uid, user_test.windows[0].history, k=3)
        assert len(top) == 3
        assert refreshed.endpoint.predictor.model.privacy_temperature == pytest.approx(
            user.endpoint.predictor.model.privacy_temperature
        )
