"""Unit tests for the four personalization methods."""

import numpy as np
import pytest

from repro.data import SpatialLevel
from repro.models import (
    NextLocationPredictor,
    PersonalizationConfig,
    PersonalizationMethod,
    personalize,
)


@pytest.fixture(scope="module")
def setup(tiny_corpus, tiny_general):
    general, _, _ = tiny_general
    uid = tiny_corpus.personal_ids[0]
    user_ds = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING)
    train, test = user_ds.split(0.8)
    return general, train, test, tiny_corpus.spec(SpatialLevel.BUILDING)


CONFIG = PersonalizationConfig(epochs=4, patience=None, scratch_hidden_size=12)


class TestReuse:
    def test_returns_copy_with_same_predictions(self, setup, rng):
        general, train, test, spec = setup
        model, fit_result = personalize(general, train, PersonalizationMethod.REUSE, CONFIG, rng)
        assert fit_result is None
        X, y = test.encode()
        a = NextLocationPredictor(general, spec).top_k_accuracy(X, y, 1)
        b = NextLocationPredictor(model, spec).top_k_accuracy(X, y, 1)
        assert a == b

    def test_copy_does_not_alias_general(self, setup, rng):
        general, train, _, _ = setup
        model, _ = personalize(general, train, PersonalizationMethod.REUSE, CONFIG, rng)
        model.head.weight.data[:] = 0.0
        assert not np.allclose(general.head.weight.data, 0.0)


class TestScratchLSTM:
    def test_single_layer_and_size(self, setup, rng):
        general, train, _, _ = setup
        model, _ = personalize(general, train, PersonalizationMethod.LSTM, CONFIG, rng)
        assert model.lstm.num_layers == 1
        assert model.hidden_size == CONFIG.scratch_hidden_size
        assert model.num_parameters() < general.num_parameters()


class TestFeatureExtraction:
    def test_base_lstm_frozen_and_unchanged(self, setup, rng):
        general, train, _, _ = setup
        before = {
            name: p.data.copy() for name, p in general.named_parameters() if "lstm" in name
        }
        model, _ = personalize(general, train, PersonalizationMethod.TL_FE, CONFIG, rng)
        # The personal copy's base LSTM must be frozen and bit-identical to
        # the general model's (feature extraction never touches it).
        for name, param in model.named_parameters():
            if name.startswith("lstm."):
                assert not param.requires_grad
                np.testing.assert_array_equal(param.data, before[name])

    def test_surplus_layer_added_and_trainable(self, setup, rng):
        general, train, _, _ = setup
        model, _ = personalize(general, train, PersonalizationMethod.TL_FE, CONFIG, rng)
        assert model.extra is not None
        assert all(p.requires_grad for p in model.extra.parameters())

    def test_general_model_untouched(self, setup, rng):
        general, train, _, _ = setup
        snapshot = general.state_dict()
        personalize(general, train, PersonalizationMethod.TL_FE, CONFIG, rng)
        for name, value in general.state_dict().items():
            np.testing.assert_array_equal(value, snapshot[name])
        assert all(p.requires_grad for p in general.parameters())


class TestFineTune:
    def test_first_layer_frozen_second_trained(self, setup, rng):
        general, train, _, _ = setup
        model, _ = personalize(general, train, PersonalizationMethod.TL_FT, CONFIG, rng)
        first = model.lstm.cells[0]
        second = model.lstm.cells[1]
        assert all(not p.requires_grad for p in first.parameters())
        assert all(p.requires_grad for p in second.parameters())
        np.testing.assert_array_equal(
            first.weight_ih.data, general.lstm.cells[0].weight_ih.data
        )
        assert not np.allclose(
            second.weight_ih.data, general.lstm.cells[1].weight_ih.data
        )

    def test_no_surplus_layer(self, setup, rng):
        general, train, _, _ = setup
        model, _ = personalize(general, train, PersonalizationMethod.TL_FT, CONFIG, rng)
        assert model.extra is None


class TestTrainingEffect:
    @pytest.mark.parametrize(
        "method",
        [PersonalizationMethod.LSTM, PersonalizationMethod.TL_FE, PersonalizationMethod.TL_FT],
    )
    def test_training_reduces_loss(self, setup, rng, method):
        general, train, _, _ = setup
        _, fit_result = personalize(general, train, method, CONFIG, rng)
        assert fit_result is not None
        assert fit_result.train_losses[-1] <= fit_result.train_losses[0]

    def test_unknown_method_rejected(self, setup, rng):
        general, train, _, _ = setup
        with pytest.raises(ValueError):
            personalize(general, train, "bogus", CONFIG, rng)
