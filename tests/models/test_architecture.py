"""Unit tests for the NextLocationModel architecture."""

import numpy as np
import pytest

from repro.models import NextLocationModel
from repro.nn import Tensor


@pytest.fixture
def model(rng):
    return NextLocationModel(
        input_width=20, num_locations=7, hidden_size=12, num_layers=2, dropout=0.1, rng=rng
    )


class TestForward:
    def test_logit_shape(self, model):
        model.eval()
        out = model(Tensor(np.zeros((4, 2, 20))))
        assert out.shape == (4, 7)

    def test_surplus_lstm_changes_output(self, model, rng):
        model.eval()
        x = Tensor(np.ones((1, 2, 20)))
        before = model(x).numpy().copy()
        model.add_surplus_lstm(rng)
        model.eval()
        after = model(x).numpy()
        assert not np.allclose(before, after)

    def test_surplus_lstm_only_once(self, model, rng):
        model.add_surplus_lstm(rng)
        with pytest.raises(ValueError):
            model.add_surplus_lstm(rng)


class TestPrivacyControls:
    def test_temperature_scales_logits_in_eval(self, model):
        model.eval()
        x = Tensor(np.ones((1, 2, 20)))
        base = model(x).numpy().copy()
        model.set_privacy_temperature(0.5)
        scaled = model(x).numpy()
        np.testing.assert_allclose(scaled, base / 0.5, atol=1e-12)

    def test_temperature_ignored_in_train(self, model):
        model.set_privacy_temperature(0.01)
        model.train()
        # dropout makes outputs stochastic; compare against a no-dropout twin
        model.lstm.dropout_p = 0.0
        x = Tensor(np.ones((1, 2, 20)))
        a = model(x).numpy().copy()
        model.set_privacy_temperature(1.0)
        b = model(x).numpy()
        np.testing.assert_allclose(a, b)

    def test_privacy_temperature_property(self, model):
        model.set_privacy_temperature(1e-3)
        assert model.privacy_temperature == 1e-3


class TestCopy:
    def test_copy_preserves_weights_and_temperature(self, model, rng):
        model.set_privacy_temperature(0.25)
        clone = model.copy(rng)
        assert clone.privacy_temperature == 0.25
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_copy_is_independent(self, model, rng):
        clone = model.copy(rng)
        clone.head.weight.data[:] = 0.0
        assert not np.allclose(model.head.weight.data, 0.0)

    def test_copy_includes_surplus(self, model, rng):
        model.add_surplus_lstm(rng)
        clone = model.copy(rng)
        assert clone.extra is not None
        model.eval()
        clone.eval()
        x = Tensor(np.ones((1, 2, 20)))
        np.testing.assert_allclose(model(x).numpy(), clone(x).numpy())

    def test_clone_architecture_fresh_weights(self, model, rng):
        fresh = model.clone_architecture(np.random.default_rng(123))
        assert fresh.input_width == model.input_width
        assert not np.allclose(fresh.head.weight.data, model.head.weight.data)


class TestBackendPropagation:
    def test_surplus_lstm_inherits_backend(self, rng):
        from repro.models.architecture import NextLocationModel

        model = NextLocationModel(
            input_width=10, num_locations=4, hidden_size=6, num_layers=2,
            dropout=0.0, rng=rng,
        )
        model.set_backend("reference")
        model.add_surplus_lstm(rng)
        assert model.extra.backend == "reference"
        model.set_backend("fused")
        assert model.extra.backend == "fused" and model.lstm.backend == "fused"

    def test_copy_preserves_backend(self, rng):
        from repro.models.architecture import NextLocationModel
        import numpy as np

        model = NextLocationModel(
            input_width=10, num_locations=4, hidden_size=6, num_layers=2,
            dropout=0.0, rng=rng,
        )
        model.set_backend("reference")
        clone = model.copy(np.random.default_rng(0))
        assert clone.backend == "reference"
