"""Unit tests for the Markov-chain baselines."""

import numpy as np
import pytest

from repro.data import FeatureSpec, SequenceDataset, SessionFeatures
from repro.data.dataset import Window
from repro.models import MarkovChainModel, TimeAwareMarkovModel

SPEC = FeatureSpec(num_locations=5)


def make_window(prev2, prev1, target, entry1=20):
    return Window(
        user_id=0,
        history=(
            SessionFeatures(10, 3, prev2, 0),
            SessionFeatures(entry1, 3, prev1, 0),
        ),
        target=target,
        day_index=0,
        contiguous=True,
    )


@pytest.fixture
def chain_dataset():
    """A deterministic chain 0 -> 1 -> 2 -> 0 plus a rare 1 -> 3 branch."""
    windows = []
    for _ in range(9):
        windows.extend(
            [make_window(0, 1, 2), make_window(1, 2, 0), make_window(2, 0, 1)]
        )
    windows.append(make_window(0, 1, 3))
    return SequenceDataset(spec=SPEC, windows=windows)


class TestMarkovChain:
    def test_learns_dominant_transition(self, chain_dataset):
        model = MarkovChainModel(num_locations=5, order=2).fit(chain_dataset)
        probs = model.confidences(
            (SessionFeatures(10, 3, 0, 0), SessionFeatures(20, 3, 1, 0))
        )
        assert probs.argmax() == 2
        np.testing.assert_allclose(probs.sum(), 1.0)

    def test_rare_branch_has_some_mass(self, chain_dataset):
        model = MarkovChainModel(num_locations=5, order=2).fit(chain_dataset)
        probs = model.confidences(
            (SessionFeatures(10, 3, 0, 0), SessionFeatures(20, 3, 1, 0))
        )
        assert probs[3] > probs[4]  # observed once vs never

    def test_backoff_to_order1_then_marginal(self, chain_dataset):
        model = MarkovChainModel(num_locations=5, order=2).fit(chain_dataset)
        # Unseen order-2 context (4, 1) backs off to order-1 context 1.
        probs = model.confidences(
            (SessionFeatures(10, 3, 4, 0), SessionFeatures(20, 3, 1, 0))
        )
        assert probs.argmax() == 2
        # Fully unseen previous location backs off to the marginal.
        probs = model.confidences(
            (SessionFeatures(10, 3, 4, 0), SessionFeatures(20, 3, 4, 0))
        )
        np.testing.assert_allclose(probs.sum(), 1.0)

    def test_top_k_accuracy_on_chain(self, chain_dataset):
        model = MarkovChainModel(num_locations=5, order=2).fit(chain_dataset)
        assert model.top_k_accuracy(chain_dataset, 1) > 0.9

    def test_unfit_model_rejected(self):
        model = MarkovChainModel(num_locations=5)
        with pytest.raises(RuntimeError):
            model.confidences((SessionFeatures(0, 0, 0, 0), SessionFeatures(0, 0, 1, 0)))

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            MarkovChainModel(num_locations=5, order=3)

    def test_empty_dataset_accuracy_nan(self):
        model = MarkovChainModel(num_locations=5).fit(SequenceDataset(spec=SPEC))
        assert np.isnan(model.top_k_accuracy(SequenceDataset(spec=SPEC), 1))


class TestTimeAwareMarkov:
    def test_time_bucket_disambiguates(self):
        """Same previous location, different time -> different successor."""
        windows = []
        for _ in range(10):
            windows.append(make_window(0, 1, 2, entry1=18))  # morning: 1 -> 2
            windows.append(make_window(0, 1, 3, entry1=40))  # evening: 1 -> 3
        dataset = SequenceDataset(spec=SPEC, windows=windows)
        model = TimeAwareMarkovModel(num_locations=5).fit(dataset)
        morning = model.confidences(
            (SessionFeatures(10, 3, 0, 0), SessionFeatures(18, 3, 1, 0))
        )
        evening = model.confidences(
            (SessionFeatures(10, 3, 0, 0), SessionFeatures(40, 3, 1, 0))
        )
        assert morning.argmax() == 2
        assert evening.argmax() == 3
        # The plain order-1 chain cannot separate these.
        plain = MarkovChainModel(num_locations=5, order=1).fit(dataset)
        flat = plain.confidences(
            (SessionFeatures(10, 3, 0, 0), SessionFeatures(18, 3, 1, 0))
        )
        assert abs(flat[2] - flat[3]) < 0.2

    def test_fallback_for_unseen_bucket(self, chain_dataset):
        model = TimeAwareMarkovModel(num_locations=5).fit(chain_dataset)
        probs = model.confidences(
            (SessionFeatures(10, 3, 0, 0), SessionFeatures(47, 3, 1, 0))
        )
        np.testing.assert_allclose(probs.sum(), 1.0)

    def test_beats_chance_on_real_user(self, tiny_corpus):
        from repro.data import SpatialLevel

        uid = tiny_corpus.personal_ids[0]
        train, test = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING).split(0.8)
        spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        model = TimeAwareMarkovModel(num_locations=spec.num_locations).fit(train)
        assert model.top_k_accuracy(test, 3) > 3.0 / spec.num_locations
