"""Unit tests for the black-box predictor interface."""

import numpy as np
import pytest

from repro.data import SpatialLevel
from repro.models import NextLocationModel, NextLocationPredictor


@pytest.fixture
def predictor(tiny_corpus, tiny_general):
    general, _, _ = tiny_general
    return NextLocationPredictor(general, tiny_corpus.spec(SpatialLevel.BUILDING))


@pytest.fixture
def sample_history(tiny_corpus):
    uid = tiny_corpus.personal_ids[0]
    ds = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING)
    return ds.windows[0].history


class TestQueries:
    def test_confidences_are_distribution(self, predictor, sample_history):
        probs = predictor.confidences(sample_history)
        assert probs.shape == (predictor.spec.num_locations,)
        np.testing.assert_allclose(probs.sum(), 1.0, atol=1e-9)
        assert np.all(probs >= 0)

    def test_top_k_sorted_desc(self, predictor, sample_history):
        top = predictor.top_k(sample_history, 5)
        confidences = [c for _, c in top]
        assert confidences == sorted(confidences, reverse=True)
        assert len(top) == 5

    def test_predict_is_top_1(self, predictor, sample_history):
        assert predictor.predict(sample_history) == predictor.top_k(sample_history, 1)[0][0]

    def test_query_count_tracks(self, predictor, sample_history):
        before = predictor.query_count
        predictor.confidences(sample_history)
        assert predictor.query_count == before + 1

    def test_domain_mismatch_rejected(self, tiny_corpus, tiny_general):
        general, _, _ = tiny_general
        with pytest.raises(ValueError):
            NextLocationPredictor(general, tiny_corpus.spec(SpatialLevel.AP))


class TestLogSpacePrecision:
    def test_log_confidences_match_linear_when_undefended(self, predictor, sample_history):
        encoded = predictor.spec.encode_sequence(sample_history)[None, :, :]
        linear = predictor.confidences_encoded(encoded)
        logp = predictor.log_confidences_encoded(encoded)
        np.testing.assert_allclose(np.exp(logp), linear, atol=1e-9)

    def test_top_k_accuracy_temperature_invariant(self, tiny_corpus, tiny_general):
        """The paper's claim: the privacy layer leaves accuracy unchanged
        (given adequate precision — our log-space ranking)."""
        general, _, test = tiny_general
        spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        X, y = test.encode()
        defended_model = general.copy(np.random.default_rng(0))
        defended_model.set_privacy_temperature(1e-4)
        plain = NextLocationPredictor(general, spec)
        defended = NextLocationPredictor(defended_model, spec)
        for k in (1, 2, 3):
            assert plain.top_k_accuracy(X, y, k) == defended.top_k_accuracy(X, y, k)

    def test_linear_confidences_saturate_under_privacy(self, tiny_corpus, tiny_general, sample_history):
        general, _, _ = tiny_general
        spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        defended_model = general.copy(np.random.default_rng(0))
        defended_model.set_privacy_temperature(1e-4)
        defended = NextLocationPredictor(defended_model, spec)
        probs = defended.confidences(sample_history)
        assert probs.max() > 0.999  # the attack-facing view saturates


class TestBatchedQueries:
    """The fleet serving surface: many windows, one fused dispatch."""

    def test_top_k_batch_matches_looped_top_k(self, predictor, tiny_corpus):
        uid = tiny_corpus.personal_ids[0]
        ds = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING)
        histories = [w.history for w in ds.windows[:8]]
        batched = predictor.top_k_batch(histories, 3)
        looped = [predictor.top_k(h, 3) for h in histories]
        assert len(batched) == len(looped)
        for brow, lrow in zip(batched, looped):
            assert [loc for loc, _ in brow] == [loc for loc, _ in lrow]
            np.testing.assert_allclose(
                [c for _, c in brow], [c for _, c in lrow], rtol=1e-9
            )

    def test_top_k_batch_counts_queries(self, predictor, tiny_corpus):
        uid = tiny_corpus.personal_ids[0]
        ds = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING)
        histories = [w.history for w in ds.windows[:5]]
        before = predictor.query_count
        predictor.top_k_batch(histories, 2)
        assert predictor.query_count == before + 5

    def test_top_k_batch_empty(self, predictor):
        assert predictor.top_k_batch([], 3) == []

    def test_mixed_window_lengths_rejected(self, predictor, sample_history):
        with pytest.raises(ValueError, match="window length"):
            predictor.encode_histories([sample_history, sample_history[:1]])
