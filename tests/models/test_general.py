"""Unit tests for general-model training."""

import numpy as np

from repro.data import SpatialLevel
from repro.models import GeneralModelConfig, NextLocationPredictor, train_general_model


class TestGeneralTraining:
    def test_loss_decreases_and_eval_mode(self, tiny_corpus):
        pooled = tiny_corpus.contributor_dataset(SpatialLevel.BUILDING)
        train, _ = pooled.split_by_user(0.8)
        model, result = train_general_model(
            train,
            GeneralModelConfig(hidden_size=16, epochs=4, patience=None),
            np.random.default_rng(0),
        )
        assert result.train_losses[-1] < result.train_losses[0]
        assert not model.training

    def test_architecture_matches_config(self, tiny_corpus):
        pooled = tiny_corpus.contributor_dataset(SpatialLevel.BUILDING)
        train, _ = pooled.split_by_user(0.8)
        config = GeneralModelConfig(hidden_size=20, num_layers=2, epochs=1)
        model, _ = train_general_model(train, config, np.random.default_rng(0))
        assert model.hidden_size == 20
        assert model.lstm.num_layers == 2
        assert model.num_locations == train.spec.num_locations

    def test_beats_uniform_guessing(self, tiny_general, tiny_corpus):
        model, _, test = tiny_general
        spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        predictor = NextLocationPredictor(model, spec)
        X, y = test.encode()
        top3 = predictor.top_k_accuracy(X, y, 3)
        assert top3 > 3.0 / spec.num_locations  # better than chance

    def test_deterministic_given_seed(self, tiny_corpus):
        pooled = tiny_corpus.contributor_dataset(SpatialLevel.BUILDING)
        train, _ = pooled.split_by_user(0.8)
        config = GeneralModelConfig(hidden_size=12, epochs=2, patience=None)
        a, _ = train_general_model(train, config, np.random.default_rng(7))
        b, _ = train_general_model(train, config, np.random.default_rng(7))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)
