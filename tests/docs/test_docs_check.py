"""Tier-1 slice of the docs health checks (the fast, static half).

The CI ``docs`` job additionally executes every runnable README command
(``tools/docs_check.py --run-blocks``); here we keep the cheap
guarantees in the local suite: no dangling ``§N`` references, no dead
local links, and the command extractor actually finds the quickstart
lines (so the CI job can never silently check nothing).
"""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _load_docs_check():
    spec = importlib.util.spec_from_file_location(
        "docs_check", REPO_ROOT / "tools" / "docs_check.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


docs_check = _load_docs_check()


def test_no_dangling_section_references():
    assert docs_check.check_section_references() == []


def test_no_dead_local_links():
    assert docs_check.check_local_links() == []


def test_design_defines_all_fifteen_sections():
    assert docs_check.design_sections() == set(range(1, 16))


def test_readme_commands_extracted():
    commands = docs_check.extract_runnable_commands(REPO_ROOT / "README.md")
    assert any("examples/quickstart.py" in c for c in commands)
    assert any("-m repro audit" in c for c in commands)
    assert any("examples/privacy_audit.py" in c for c in commands)
    # Slow paths must never leak into the CI smoke.
    assert not any("pytest" in c or "--scale small" in c for c in commands)
    # No unstripped inline comments (they would break argv splitting).
    assert not any("#" in c for c in commands)
